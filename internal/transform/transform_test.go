package transform

import (
	"bytes"
	"strings"
	"testing"

	"rafda/internal/ir"
	"rafda/internal/minijava"
	"rafda/internal/vm"
)

// figure2Source is the paper's Figure 2 sample class X with enough
// supporting classes to execute it.
const figure2Source = `
class Y {
    static int K = 17;
    Y() {}
    int n(long j) { return (int) j + 1; }
}
class Z {
    int seed;
    Z(int seed) { this.seed = seed; }
    int q(int i) { return seed + i; }
}
class X {
    private Y y;
    X(Y y) { this.y = y; }
    protected int m(long j) { return y.n(j); }
    static final Z z = new Z(Y.K);
    static int p(int i) { return z.q(i); }
}
class Main {
    static void main() {
        X x = new X(new Y());
        sys.System.println("m=" + x.m(41));
        sys.System.println("p=" + X.p(3));
    }
}`

func compileFigure2(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := minijava.Compile(figure2Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func transformFigure2(t *testing.T) *Result {
	t.Helper()
	res, err := Transform(compileFigure2(t), Options{})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return res
}

// runOriginal runs the untransformed program and returns output.
func runOriginal(t *testing.T, prog *ir.Program, mainClass string) string {
	t.Helper()
	var out bytes.Buffer
	machine := vm.MustNew(prog, vm.WithOutput(&out))
	if err := machine.RunMain(mainClass); err != nil {
		t.Fatalf("run original: %v", err)
	}
	return out.String()
}

// runTransformedLocal runs the transformed program with all-local policy.
func runTransformedLocal(t *testing.T, res *Result, mainClass string) string {
	t.Helper()
	var out bytes.Buffer
	machine := vm.MustNew(res.Program, vm.WithOutput(&out))
	BindLocal(machine, res)
	if err := RunMain(machine, res, mainClass); err != nil {
		t.Fatalf("run transformed: %v", err)
	}
	return out.String()
}

func TestAnalysisFigure2(t *testing.T) {
	prog := compileFigure2(t)
	a := Analyze(prog)
	for _, name := range []string{"X", "Y", "Z", "Main"} {
		if !a.Transformable(name) {
			t.Errorf("%s should be transformable: %v", name, a.Cause(name))
		}
	}
	if a.Transformable(ir.ObjectClass) {
		t.Error("sys.Object must not be transformable")
	}
	if a.Transformable("sys.Exception") {
		t.Error("sys.Exception must not be transformable")
	}
}

func TestGeneratedFamilyForX(t *testing.T) {
	res := transformFigure2(t)
	p := res.Program
	want := []string{
		"X_O_Int", "X_O_Local", "X_C_Int", "X_C_Local", "X_O_Factory", "X_C_Factory",
	}
	for _, proto := range res.Protocols {
		want = append(want, "X_O_Proxy_"+proto, "X_C_Proxy_"+proto)
	}
	for _, name := range want {
		if !p.Has(name) {
			t.Errorf("missing generated class %s", name)
		}
	}
	if p.Has("X") {
		t.Error("original class X should have been replaced")
	}
	if !p.Has(ir.ObjectClass) {
		t.Error("system classes must be carried over")
	}
}

// TestFigure3Shape checks the generated X_O_Int and X_O_Local against
// the members the paper's Figure 3 lists.
func TestFigure3Shape(t *testing.T) {
	res := transformFigure2(t)
	oint := res.Program.Class("X_O_Int")
	if oint == nil || !oint.IsInterface {
		t.Fatal("X_O_Int missing or not an interface")
	}
	// Y_O_Int get_y(); void set_y(Y_O_Int); int m(long).
	get := oint.Method("get_y", 0)
	if get == nil || get.Return.Name != "Y_O_Int" {
		t.Fatalf("X_O_Int.get_y wrong: %+v", get)
	}
	set := oint.Method("set_y", 1)
	if set == nil || set.Params[0].Name != "Y_O_Int" {
		t.Fatalf("X_O_Int.set_y wrong: %+v", set)
	}
	m := oint.Method("m", 1)
	if m == nil || m.Return.Kind != ir.KindInt || m.Params[0].Kind != ir.KindInt {
		t.Fatalf("X_O_Int.m wrong: %+v", m)
	}

	olocal := res.Program.Class("X_O_Local")
	if olocal == nil {
		t.Fatal("X_O_Local missing")
	}
	if len(olocal.Interfaces) != 1 || olocal.Interfaces[0] != "X_O_Int" {
		t.Fatalf("X_O_Local interfaces: %v", olocal.Interfaces)
	}
	// Private field y of interface type, public default ctor.
	f := olocal.Field("y")
	if f == nil || f.Type.Name != "Y_O_Int" || f.Access != ir.AccessPrivate {
		t.Fatalf("X_O_Local.y wrong: %+v", f)
	}
	ctor := olocal.Method(ir.ConstructorName, 0)
	if ctor == nil || ctor.Access != ir.AccessPublic {
		t.Fatal("X_O_Local missing public default constructor")
	}
	// m's body must use interface calls only: no GetField/PutField on X,
	// per the figure's "get_y() and n(j) below are interface calls".
	mImpl := olocal.Method("m", 1)
	if mImpl == nil {
		t.Fatal("X_O_Local.m missing")
	}
	sawGetY, sawN := false, false
	for _, in := range mImpl.Code {
		if in.Op == ir.OpGetField {
			t.Errorf("X_O_Local.m contains direct field access: %v", in)
		}
		if in.Op == ir.OpInvokeInterface && in.Owner == "X_O_Int" && in.Member == "get_y" {
			sawGetY = true
		}
		if in.Op == ir.OpInvokeInterface && in.Owner == "Y_O_Int" && in.Member == "n" {
			sawN = true
		}
	}
	if !sawGetY || !sawN {
		t.Errorf("X_O_Local.m should call get_y() and n() via interfaces (got get_y=%v n=%v)\n%s",
			sawGetY, sawN, ir.Sprint(olocal, ir.PrintOptions{Code: true}))
	}
	// The proxies implement the same interface with native methods.
	proxy := res.Program.Class("X_O_Proxy_soap")
	if proxy == nil {
		t.Fatal("X_O_Proxy_soap missing")
	}
	for _, name := range []string{"get_y", "m"} {
		pm := proxy.MethodByKey(name + "/0")
		if name == "m" {
			pm = proxy.Method("m", 1)
		}
		if pm == nil || !pm.Native {
			t.Errorf("proxy method %s missing or not native", name)
		}
	}
}

// TestFigure4Shape checks the statics transformation against Figure 4.
func TestFigure4Shape(t *testing.T) {
	res := transformFigure2(t)
	cint := res.Program.Class("X_C_Int")
	if cint == nil || !cint.IsInterface {
		t.Fatal("X_C_Int missing or not an interface")
	}
	if m := cint.Method("get_z", 0); m == nil || m.Return.Name != "Z_O_Int" {
		t.Fatalf("X_C_Int.get_z wrong: %+v", m)
	}
	if m := cint.Method("p", 1); m == nil || m.Static {
		t.Fatalf("X_C_Int.p must be a non-static declaration: %+v", m)
	}

	clocal := res.Program.Class("X_C_Local")
	if clocal == nil {
		t.Fatal("X_C_Local missing")
	}
	// Singleton declarations.
	me := clocal.Field("me")
	if me == nil || !me.Static || me.Type.Name != "X_C_Int" {
		t.Fatalf("X_C_Local.me wrong: %+v", me)
	}
	if m := clocal.Method("get_me", 0); m == nil || !m.Static {
		t.Fatal("X_C_Local.get_me missing or not static")
	}
	// p became an instance method using get_z() through this.
	p := clocal.Method("p", 1)
	if p == nil || p.Static {
		t.Fatal("X_C_Local.p missing or still static")
	}
	sawGetZ := false
	for _, in := range p.Code {
		if in.Op == ir.OpInvokeInterface && in.Owner == "X_C_Int" && in.Member == "get_z" {
			sawGetZ = true
		}
	}
	if !sawGetZ {
		t.Errorf("X_C_Local.p should read z via get_z():\n%s",
			ir.Sprint(clocal, ir.PrintOptions{Code: true}))
	}
}

// TestFigure5Shape checks the factories against Figure 5.
func TestFigure5Shape(t *testing.T) {
	res := transformFigure2(t)
	ofac := res.Program.Class("X_O_Factory")
	if ofac == nil {
		t.Fatal("X_O_Factory missing")
	}
	mk := ofac.Method("make", 0)
	if mk == nil || !mk.Static || !mk.Native || mk.Return.Name != "X_O_Int" {
		t.Fatalf("X_O_Factory.make wrong: %+v", mk)
	}
	// init(X_O_Int that, Y_O_Int y) performing that.set_y(y).
	init := ofac.Method("init", 2)
	if init == nil || !init.Static {
		t.Fatal("X_O_Factory.init missing")
	}
	if init.Params[0].Name != "X_O_Int" || init.Params[1].Name != "Y_O_Int" {
		t.Fatalf("X_O_Factory.init params: %v", init.Params)
	}
	sawSetY := false
	for _, in := range init.Code {
		if in.Op == ir.OpInvokeInterface && in.Owner == "X_O_Int" && in.Member == "set_y" {
			sawSetY = true
		}
		if in.Op == ir.OpInvokeSpecial {
			t.Errorf("init should not contain constructor calls: %v", in)
		}
	}
	if !sawSetY {
		t.Errorf("X_O_Factory.init should call that.set_y:\n%s",
			ir.Sprint(ofac, ir.PrintOptions{Code: true}))
	}

	cfac := res.Program.Class("X_C_Factory")
	if cfac == nil {
		t.Fatal("X_C_Factory missing")
	}
	disc := cfac.Method("discover", 0)
	if disc == nil || !disc.Static || !disc.Native || disc.Return.Name != "X_C_Int" {
		t.Fatalf("X_C_Factory.discover wrong: %+v", disc)
	}
	// clinit(that) builds Z via Z_O_Factory and reads Y.K via
	// Y_C_Factory.discover().get_K() — exactly Figure 5's body.
	cl := cfac.Method("clinit", 1)
	if cl == nil {
		t.Fatal("X_C_Factory.clinit missing")
	}
	var sawMake, sawInit, sawGetK, sawSetZ bool
	for _, in := range cl.Code {
		if in.Op == ir.OpInvokeStatic && in.Owner == "Z_O_Factory" && in.Member == "make" {
			sawMake = true
		}
		if in.Op == ir.OpInvokeStatic && in.Owner == "Z_O_Factory" && in.Member == "init" {
			sawInit = true
		}
		if in.Op == ir.OpInvokeStatic && in.Owner == "Y_C_Factory" && in.Member == "get_K" {
			sawGetK = true
		}
		if in.Op == ir.OpInvokeInterface && in.Owner == "X_C_Int" && in.Member == "set_z" {
			sawSetZ = true
		}
	}
	if !sawMake || !sawInit || !sawGetK || !sawSetZ {
		t.Errorf("clinit shape wrong (make=%v init=%v getK=%v setZ=%v):\n%s",
			sawMake, sawInit, sawGetK, sawSetZ, ir.Sprint(cfac, ir.PrintOptions{Code: true}))
	}
}

// TestSemanticEquivalenceLocal is the paper's §4 claim: the transformed
// program executed within a single address space behaves identically.
func TestSemanticEquivalenceLocal(t *testing.T) {
	prog := compileFigure2(t)
	orig := runOriginal(t, prog, "Main")
	res := transformFigure2(t)
	trans := runTransformedLocal(t, res, "Main")
	if orig != trans {
		t.Fatalf("behaviour diverged:\noriginal:    %q\ntransformed: %q", orig, trans)
	}
	if want := "m=42\np=20\n"; orig != want {
		t.Fatalf("unexpected baseline output %q", orig)
	}
}

// TestSemanticEquivalenceSuite runs a battery of programs through both
// pipelines and requires identical output.
func TestSemanticEquivalenceSuite(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"fields and loops", `
class Acc {
    int total;
    Acc() { this.total = 0; }
    void add(int x) { total = total + x; }
    int get() { return total; }
}
class Main {
    static void main() {
        Acc a = new Acc();
        for (int i = 1; i <= 10; i = i + 1) { a.add(i); }
        sys.System.println("total=" + a.get());
    }
}`},
		{"shared reference figure1", `
class C {
    int state;
    C(int s) { this.state = s; }
    int bump() { state = state + 1; return state; }
}
class A {
    C c;
    A(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class B {
    C c;
    B(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class Main {
    static void main() {
        C shared = new C(100);
        A a = new A(shared);
        B b = new B(shared);
        sys.System.println("a=" + a.use());
        sys.System.println("b=" + b.use());
        sys.System.println("a=" + a.use());
        sys.System.println("final=" + shared.state);
    }
}`},
		{"statics across classes", `
class Config {
    static int base = 1000;
    static int scale(int x) { return base + x; }
}
class User {
    int id;
    User(int id) { this.id = id; }
    int score() { return Config.scale(id); }
}
class Main {
    static void main() {
        User u = new User(5);
        sys.System.println("s1=" + u.score());
        Config.base = 2000;
        sys.System.println("s2=" + u.score());
        sys.System.println("direct=" + Config.scale(1));
    }
}`},
		{"inheritance", `
class Shape {
    string name;
    Shape(string n) { this.name = n; }
    int area() { return 0; }
    string describe() { return name + ":" + area(); }
}
class Sq extends Shape {
    int side;
    Sq(int s) { super("sq"); this.side = s; }
    int area() { return side * side; }
}
class Main {
    static void main() {
        Shape s = new Sq(4);
        sys.System.println(s.describe());
        Shape p = new Shape("plain");
        sys.System.println(p.describe());
    }
}`},
		{"exceptions through transformed code", `
class Worker {
    int attempt(int x) {
        if (x == 0) { throw new sys.RuntimeException("zero"); }
        return 100 / x;
    }
}
class Main {
    static void main() {
        Worker w = new Worker();
        try {
            sys.System.println("r=" + w.attempt(4));
            sys.System.println("r=" + w.attempt(0));
        } catch (sys.RuntimeException e) {
            sys.System.println("caught " + e.getMessage());
        }
    }
}`},
		{"arrays of transformed classes", `
class Cell {
    int v;
    Cell(int v) { this.v = v; }
}
class Main {
    static void main() {
        Cell[] cells = new Cell[4];
        for (int i = 0; i < cells.length; i = i + 1) { cells[i] = new Cell(i * 10); }
        int sum = 0;
        for (int i = 0; i < cells.length; i = i + 1) { sum = sum + cells[i].v; }
        sys.System.println("sum=" + sum);
    }
}`},
		{"recursive structure", `
class Node {
    int v;
    Node next;
    Node(int v, Node next) { this.v = v; this.next = next; }
    int sum() {
        if (next == null) { return v; }
        return v + next.sum();
    }
}
class Main {
    static void main() {
        Node n = new Node(1, new Node(2, new Node(3, null)));
        sys.System.println("sum=" + n.sum());
    }
}`},
		{"casts and instanceof", `
class A2 { int tag() { return 1; } }
class B2 extends A2 { int tag() { return 2; } }
class Main {
    static void main() {
        A2 x = new B2();
        sys.System.println("tag=" + x.tag());
        sys.System.println("inst=" + (x instanceof B2));
        B2 y = (B2) x;
        sys.System.println("tag2=" + y.tag());
    }
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := minijava.Compile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			orig := runOriginal(t, prog, "Main")
			res, err := Transform(prog, Options{})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			trans := runTransformedLocal(t, res, "Main")
			if orig != trans {
				t.Fatalf("behaviour diverged:\noriginal:    %q\ntransformed: %q", orig, trans)
			}
			if strings.TrimSpace(orig) == "" {
				t.Fatal("test program produced no output")
			}
		})
	}
}

func TestAnalysisRules(t *testing.T) {
	src := `
interface Greeter { string greet(); }
class UsesIface implements Greeter {
    string greet() { return "hi"; }
}
class HasNative {
    native int fast(int x);
}
class RefsNative {
    int go() { return 1; }
}
class MyError extends sys.Exception {
    MyError(string m) { super(m); }
}
class SuperOfBad {}
class BadChild extends SuperOfBad {
    native void n();
}
class Clean {
    int v;
    Clean(int v) { this.v = v; }
}`
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := Analyze(prog)

	cases := []struct {
		class  string
		trans  bool
		reason Reason
	}{
		{"Greeter", false, ReasonUserInterface},
		{"UsesIface", false, ReasonImplements},
		{"HasNative", false, ReasonNative},
		{"MyError", false, ReasonThrowable},
		{"BadChild", false, ReasonNative},
		{"SuperOfBad", false, ReasonSuperOfNonTransformable},
		{"Clean", true, ReasonNone},
	}
	for _, tc := range cases {
		got := a.Transformable(tc.class)
		if got != tc.trans {
			t.Errorf("%s: transformable=%v want %v (cause %v)", tc.class, got, tc.trans, a.Cause(tc.class))
			continue
		}
		if !tc.trans && a.Cause(tc.class).Reason != tc.reason {
			t.Errorf("%s: reason %v want %v", tc.class, a.Cause(tc.class).Reason, tc.reason)
		}
	}
}

func TestAnalysisReferencedClosure(t *testing.T) {
	src := `
class NativeHolder {
    native int n();
    Helper h;
}
class Helper {
    int x;
}
class Unrelated {
    int y;
}`
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := Analyze(prog)
	if a.Transformable("Helper") {
		t.Error("Helper is referenced by a native class; must be non-transformable")
	}
	if c := a.Cause("Helper"); c.Reason != ReasonReferenced || c.Via != "NativeHolder" {
		t.Errorf("Helper cause = %+v", c)
	}
	if !a.Transformable("Unrelated") {
		t.Errorf("Unrelated should stay transformable: %v", a.Cause("Unrelated"))
	}
}

func TestExcludePolicy(t *testing.T) {
	prog := compileFigure2(t)
	a := Analyze(prog, "Z")
	if a.Transformable("Z") {
		t.Error("Z was excluded")
	}
	if a.Cause("Z").Reason != ReasonExcluded {
		t.Errorf("Z cause: %v", a.Cause("Z"))
	}
	// X references Z, so X stays transformable (reference INTO a
	// non-transformable class is fine; only the reverse closes).
	if !a.Transformable("X") {
		t.Errorf("X should remain transformable: %v", a.Cause("X"))
	}
}

func TestStatsReport(t *testing.T) {
	prog := compileFigure2(t)
	a := Analyze(prog)
	s := a.Stats()
	if s.Total != prog.Len() {
		t.Errorf("total %d want %d", s.Total, prog.Len())
	}
	if s.Transformable+s.NonTransformable != s.Total {
		t.Error("stats do not add up")
	}
	if s.Transformable != 4 { // X, Y, Z, Main
		t.Errorf("transformable=%d want 4", s.Transformable)
	}
	if rep := a.Report(); !strings.Contains(rep, "system class") {
		t.Errorf("report missing system-class row:\n%s", rep)
	}
}
