package transform

import (
	"fmt"
	"sort"

	"rafda/internal/ir"
	"rafda/internal/stdlib"
)

// Reason explains why a class is not transformable (§2.4).
type Reason uint8

// Non-transformability reasons.
const (
	ReasonNone Reason = iota
	// ReasonSystem: sys.* classes have VM-level semantics (the paper's
	// "some system classes and interfaces have special semantics in the
	// JVM").
	ReasonSystem
	// ReasonThrowable: throwing requires extending sys.Throwable, whose
	// special semantics must be preserved.
	ReasonThrowable
	// ReasonNative: "it is not practical to inspect or transform code in
	// native methods".
	ReasonNative
	// ReasonUserInterface: user-defined interfaces are one of the
	// language-specific issues the paper leaves out of scope; we treat
	// them (and their implementors) as non-transformable.
	ReasonUserInterface
	// ReasonImplements: the class implements a user-defined interface.
	ReasonImplements
	// ReasonSuperOfNonTransformable: "the super-class of a
	// non-transformable class cannot be transformed" (multiple
	// inheritance would otherwise be required).
	ReasonSuperOfNonTransformable
	// ReasonSubclassOfNonTransformable: a class extending a
	// non-transformable class (other than sys.Object) is itself
	// non-transformable — a strengthening the interface-based
	// substitution requires, since inherited members of the original
	// superclass cannot appear in the extracted interface.
	ReasonSubclassOfNonTransformable
	// ReasonReferenced: "references in a non-transformable class cannot
	// be altered and thus classes and interfaces it refers to should
	// remain available in their original forms".
	ReasonReferenced
	// ReasonExcluded: excluded by explicit policy.
	ReasonExcluded
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "transformable"
	case ReasonSystem:
		return "system class"
	case ReasonThrowable:
		return "extends sys.Throwable"
	case ReasonNative:
		return "declares native method"
	case ReasonUserInterface:
		return "user-defined interface"
	case ReasonImplements:
		return "implements user-defined interface"
	case ReasonSuperOfNonTransformable:
		return "superclass of non-transformable class"
	case ReasonSubclassOfNonTransformable:
		return "extends non-transformable class"
	case ReasonReferenced:
		return "referenced by non-transformable class"
	case ReasonExcluded:
		return "explicitly excluded"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// Cause records why a class is non-transformable and, for closure rules,
// which class induced it.
type Cause struct {
	Reason Reason
	Via    string // inducing class for closure reasons, else ""
}

// Analysis is the substitutability analysis result for a program.
type Analysis struct {
	prog   *ir.Program
	causes map[string]Cause // class -> first cause; absent = transformable
}

// Analyze computes the transformable set of prog, applying the paper's
// §2.4 rules to a fixpoint.  exclude lists classes barred by policy.
func Analyze(prog *ir.Program, exclude ...string) *Analysis {
	a := &Analysis{prog: prog, causes: make(map[string]Cause)}

	excluded := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		excluded[e] = true
	}

	// Seed rules.
	for _, c := range prog.Classes() {
		switch {
		case excluded[c.Name]:
			a.causes[c.Name] = Cause{Reason: ReasonExcluded}
		case c.Special || stdlib.IsSystemClass(c.Name):
			a.causes[c.Name] = Cause{Reason: ReasonSystem}
		case prog.IsSubclassOf(c.Name, ir.ThrowableClass):
			a.causes[c.Name] = Cause{Reason: ReasonThrowable}
		case c.IsInterface:
			a.causes[c.Name] = Cause{Reason: ReasonUserInterface}
		case c.HasNativeMethod():
			a.causes[c.Name] = Cause{Reason: ReasonNative}
		case len(c.Interfaces) > 0:
			a.causes[c.Name] = Cause{Reason: ReasonImplements, Via: c.Interfaces[0]}
		}
	}

	// Closure rules to fixpoint.
	for changed := true; changed; {
		changed = false
		mark := func(name string, cause Cause) {
			if name == "" || name == ir.ObjectClass {
				return
			}
			if _, done := a.causes[name]; done {
				return
			}
			if !prog.Has(name) {
				return
			}
			a.causes[name] = cause
			changed = true
		}
		for _, c := range prog.Classes() {
			if _, nt := a.causes[c.Name]; nt {
				// Superclass of a non-transformable class.
				mark(c.Super, Cause{Reason: ReasonSuperOfNonTransformable, Via: c.Name})
				// Everything a non-transformable class references.
				for _, r := range c.ReferencedClasses() {
					mark(r, Cause{Reason: ReasonReferenced, Via: c.Name})
				}
				continue
			}
			// Subclass of a non-transformable class (other than
			// sys.Object).
			if c.Super != "" && c.Super != ir.ObjectClass {
				if _, superNT := a.causes[c.Super]; superNT {
					mark(c.Name, Cause{Reason: ReasonSubclassOfNonTransformable, Via: c.Super})
				}
			}
		}
	}
	return a
}

// Transformable reports whether the named class may be substituted.
func (a *Analysis) Transformable(name string) bool {
	if !a.prog.Has(name) {
		return false
	}
	_, nt := a.causes[name]
	return !nt
}

// Cause returns why name is non-transformable (Reason==ReasonNone when it
// is transformable).
func (a *Analysis) Cause(name string) Cause { return a.causes[name] }

// TransformableClasses returns the sorted transformable class names.
func (a *Analysis) TransformableClasses() []string {
	var out []string
	for _, n := range a.prog.SortedNames() {
		if a.Transformable(n) {
			out = append(out, n)
		}
	}
	return out
}

// Stats summarises the analysis, reproducing the shape of the paper's
// §2.4 statistic ("about 40% ... cannot be transformed").
type Stats struct {
	Total            int
	Transformable    int
	NonTransformable int
	ByReason         map[Reason]int
}

// Percent returns the non-transformable percentage.
func (s Stats) Percent() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.NonTransformable) / float64(s.Total)
}

// Stats computes summary counts over every class in the program.
func (a *Analysis) Stats() Stats {
	s := Stats{ByReason: make(map[Reason]int)}
	for _, n := range a.prog.Names() {
		s.Total++
		if cause, nt := a.causes[n]; nt {
			s.NonTransformable++
			s.ByReason[cause.Reason]++
		} else {
			s.Transformable++
		}
	}
	return s
}

// Report renders a per-reason breakdown, sorted by count descending.
func (a *Analysis) Report() string {
	s := a.Stats()
	type row struct {
		r Reason
		n int
	}
	var rows []row
	for r, n := range s.ByReason {
		rows = append(rows, row{r, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].r < rows[j].r
	})
	out := fmt.Sprintf("classes: %d  transformable: %d  non-transformable: %d (%.1f%%)\n",
		s.Total, s.Transformable, s.NonTransformable, s.Percent())
	for _, r := range rows {
		out += fmt.Sprintf("  %-40s %6d\n", r.r.String(), r.n)
	}
	return out
}
