package transform

import (
	"fmt"
	"sync"

	"rafda/internal/ir"
)

// DefaultProtocols is the proxy family generated when none is specified,
// mirroring the paper's "e.g. SOAP-based, RMI-based" examples: soap is
// XML-over-HTTP, rrp (RAFDA Remote Protocol) is the binary TCP protocol
// playing the RMI role, json is JSON-over-HTTP.
var DefaultProtocols = []string{"rrp", "soap", "json"}

// Options configure a transformation.
type Options struct {
	// Protocols lists the proxy protocol suffixes to generate.  Empty
	// means DefaultProtocols.
	Protocols []string
	// Exclude bars classes from transformation by policy; exclusion
	// closes transitively per §2.4.
	Exclude []string
}

// Result is a completed transformation.
type Result struct {
	// Program is the transformed program: generated classes plus
	// untouched non-transformable originals.
	Program *ir.Program
	// Analysis is the substitutability analysis the transformation used;
	// nil when the Result was reconstructed from an archive.
	Analysis *Analysis
	// Protocols are the proxy protocols generated.
	Protocols []string
	// Transformed lists the classes that were substituted, in program
	// order.
	Transformed []string

	subOnce       sync.Once
	substitutable map[string]bool
}

// Substitutable reports whether the named original class was transformed
// (and may therefore cross address spaces).  Nodes call this from
// concurrent dispatch goroutines, so the lazy index is built under a
// sync.Once.
func (r *Result) Substitutable(class string) bool {
	r.subOnce.Do(func() {
		m := make(map[string]bool, len(r.Transformed))
		for _, c := range r.Transformed {
			m[c] = true
		}
		r.substitutable = m
	})
	return r.substitutable[class]
}

// Reconstruct rebuilds a Result from an already-transformed program
// (e.g. decoded from an archive): substituted classes are recognised by
// their generated factories, protocols by the proxy classes present.
func Reconstruct(prog *ir.Program) (*Result, error) {
	res := &Result{Program: prog}
	protos := map[string]bool{}
	for _, c := range prog.Classes() {
		if base, kind := BaseOfGenerated(c.Name); kind == SuffixOFactory {
			res.Transformed = append(res.Transformed, base)
		}
		if _, proto, _, ok := IsProxyClass(c.Name); ok {
			protos[proto] = true
		}
	}
	if len(res.Transformed) == 0 {
		return nil, fmt.Errorf("program contains no generated factories; not a transformed program")
	}
	for p := range protos {
		res.Protocols = append(res.Protocols, p)
	}
	return res, nil
}

// Transform applies the paper's full §2 transformation pipeline to prog
// and returns the componentised program.  The input program is not
// modified.
func Transform(prog *ir.Program, opts Options) (*Result, error) {
	protocols := opts.Protocols
	if len(protocols) == 0 {
		protocols = append([]string(nil), DefaultProtocols...)
	}
	analysis := Analyze(prog, opts.Exclude...)

	t := &transformer{
		a:         analysis,
		src:       prog,
		out:       ir.NewProgram(),
		protocols: protocols,
	}
	res := &Result{
		Analysis:  analysis,
		Protocols: protocols,
	}
	for _, c := range prog.Classes() {
		if !analysis.Transformable(c.Name) {
			t.out.MustAdd(ir.CloneClass(c))
			continue
		}
		if err := t.generateClass(c); err != nil {
			return nil, fmt.Errorf("transform %s: %w", c.Name, err)
		}
		res.Transformed = append(res.Transformed, c.Name)
	}
	res.Program = t.out
	return res, nil
}

// MainEntry returns the invocation target for the program entry point
// `static void main()` on mainClass after transformation: the class
// factory forwarder when mainClass was transformed, or the original
// class otherwise.
func (r *Result) MainEntry(mainClass string) (class, method string) {
	if r.Program.Has(CFactory(mainClass)) {
		return CFactory(mainClass), "main"
	}
	return mainClass, "main"
}
