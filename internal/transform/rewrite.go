package transform

import (
	"fmt"

	"rafda/internal/ir"
)

// codeCtx describes the destination context of a rewritten method body,
// which determines local-slot shifting and how own-class static accesses
// are expressed.
type codeCtx struct {
	ownClass string // the original class the code came from
	// slotShift is added to every local slot: +1 when a static body
	// becomes an instance body (receiver occupies slot 0).
	slotShift int
	// ownStaticsViaLocal0: own-class static accesses use the receiver in
	// slot 0 (`this` in _C_Local methods, `that` in _C_Factory.clinit) as
	// the paper's Figures 4 and 5 show, instead of going through the
	// factory forwarders.
	ownStaticsViaLocal0 bool
	// skip contains old pcs to drop entirely (e.g. the implicit
	// sys.Object super-constructor call when a constructor body moves
	// into a factory init method).
	skip map[int]bool
}

// mapType rewrites reference types of transformable classes to their
// extracted instance interfaces (§2.1: "affected type signatures ... must
// be adapted to use the interfaces").
func mapType(a *Analysis, t ir.Type) ir.Type {
	switch t.Kind {
	case ir.KindRef:
		if a.Transformable(t.Name) {
			return ir.Ref(OInt(t.Name))
		}
		return t
	case ir.KindArray:
		return ir.ArrayOf(mapType(a, *t.Elem))
	default:
		return t
	}
}

func mapTypes(a *Analysis, ts []ir.Type) []ir.Type {
	out := make([]ir.Type, len(ts))
	for i, t := range ts {
		out[i] = mapType(a, t)
	}
	return out
}

// rewriteCode rewrites one method body for the transformed world and
// remaps jump targets and exception-handler ranges.
func rewriteCode(a *Analysis, ctx codeCtx, code []ir.Instr, handlers []ir.TryHandler) ([]ir.Instr, []ir.TryHandler, error) {
	out := make([]ir.Instr, 0, len(code)+8)
	newPC := make([]int, len(code)+1)

	emit := func(in ir.Instr) { out = append(out, in) }

	for pc, in := range code {
		newPC[pc] = len(out)
		if ctx.skip[pc] {
			continue
		}
		switch in.Op {
		case ir.OpLoad, ir.OpStore:
			in.A += int64(ctx.slotShift)
			emit(in)

		case ir.OpGetField:
			if a.Transformable(in.Owner) {
				emit(ir.Instr{Op: ir.OpInvokeInterface, Owner: OInt(in.Owner), Member: Getter(in.Member)})
			} else {
				emit(in)
			}

		case ir.OpPutField:
			if a.Transformable(in.Owner) {
				emit(ir.Instr{Op: ir.OpInvokeInterface, Owner: OInt(in.Owner), Member: Setter(in.Member), NArgs: 1})
			} else {
				emit(in)
			}

		case ir.OpGetStatic:
			if !a.Transformable(in.Owner) {
				emit(in)
				break
			}
			if ctx.ownStaticsViaLocal0 && in.Owner == ctx.ownClass {
				emit(ir.Instr{Op: ir.OpLoad, A: 0})
				emit(ir.Instr{Op: ir.OpInvokeInterface, Owner: CInt(in.Owner), Member: Getter(in.Member)})
			} else {
				emit(ir.Instr{Op: ir.OpInvokeStatic, Owner: CFactory(in.Owner), Member: Getter(in.Member)})
			}

		case ir.OpPutStatic:
			if !a.Transformable(in.Owner) {
				emit(in)
				break
			}
			if ctx.ownStaticsViaLocal0 && in.Owner == ctx.ownClass {
				emit(ir.Instr{Op: ir.OpLoad, A: 0})
				emit(ir.Instr{Op: ir.OpSwap})
				emit(ir.Instr{Op: ir.OpInvokeInterface, Owner: CInt(in.Owner), Member: Setter(in.Member), NArgs: 1})
			} else {
				emit(ir.Instr{Op: ir.OpInvokeStatic, Owner: CFactory(in.Owner), Member: Setter(in.Member), NArgs: 1})
			}

		case ir.OpInvokeVirtual, ir.OpInvokeInterface:
			if a.Transformable(in.Owner) {
				emit(ir.Instr{Op: ir.OpInvokeInterface, Owner: OInt(in.Owner), Member: in.Member, NArgs: in.NArgs})
			} else {
				emit(in)
			}

		case ir.OpInvokeStatic:
			if a.Transformable(in.Owner) {
				emit(ir.Instr{Op: ir.OpInvokeStatic, Owner: CFactory(in.Owner), Member: in.Member, NArgs: in.NArgs})
			} else {
				emit(in)
			}

		case ir.OpInvokeSpecial:
			if !a.Transformable(in.Owner) {
				emit(in)
				break
			}
			if in.Member != ir.ConstructorName {
				return nil, nil, fmt.Errorf("%s: invokespecial of non-constructor %s.%s in transformable code",
					ctx.ownClass, in.Owner, in.Member)
			}
			// NEW A; DUP; args; INVOKESPECIAL A.<init>/n  becomes
			// make(); DUP; args; INVOKESTATIC A_O_Factory.init/n+1 —
			// init takes the object as an extra leading parameter.
			emit(ir.Instr{Op: ir.OpInvokeStatic, Owner: OFactory(in.Owner), Member: InitMethod, NArgs: in.NArgs + 1})

		case ir.OpNew:
			if a.Transformable(in.Owner) {
				emit(ir.Instr{Op: ir.OpInvokeStatic, Owner: OFactory(in.Owner), Member: MakeMethod})
			} else {
				emit(in)
			}

		case ir.OpCast, ir.OpInstanceOf, ir.OpNewArray, ir.OpConstNull:
			if in.TypeRef != nil {
				mt := mapType(a, *in.TypeRef)
				in.TypeRef = &mt
			}
			emit(in)

		default:
			emit(in)
		}
	}
	newPC[len(code)] = len(out)

	// Remap jump targets.
	for i := range out {
		if out[i].IsJump() {
			old := out[i].A
			if old < 0 || int(old) > len(code) {
				return nil, nil, fmt.Errorf("%s: jump target %d out of range", ctx.ownClass, old)
			}
			out[i].A = int64(newPC[old])
		}
	}
	// Remap handler ranges.
	var outH []ir.TryHandler
	for _, h := range handlers {
		outH = append(outH, ir.TryHandler{
			Start:      newPC[h.Start],
			End:        newPC[h.End],
			Target:     newPC[h.Target],
			CatchClass: h.CatchClass, // throwables are never transformable
		})
	}
	return out, outH, nil
}

// objectSuperCallSkips finds the leading `LOAD 0; INVOKESPECIAL
// <non-transformable-super>.<init>/0` pattern of a constructor so that
// the factory init method can drop it (the interface-typed `that` cannot
// meaningfully run a foreign constructor, and sys.Object's is a no-op).
func objectSuperCallSkips(a *Analysis, code []ir.Instr) map[int]bool {
	if len(code) >= 2 &&
		code[0].Op == ir.OpLoad && code[0].A == 0 &&
		code[1].Op == ir.OpInvokeSpecial &&
		code[1].Member == ir.ConstructorName &&
		code[1].NArgs == 0 &&
		!a.Transformable(code[1].Owner) {
		return map[int]bool{0: true, 1: true}
	}
	return nil
}
