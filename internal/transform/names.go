// Package transform implements the paper's contribution: the code
// transformations that turn a non-distributed program into a
// componentised, semantically equivalent one whose distribution
// boundaries are flexible (§2 of the paper).
//
// For every substitutable class A it generates:
//
//   - A_O_Int: interface over A's instance members (§2.1), with
//     implementations A_O_Local and A_O_Proxy_<protocol>;
//   - A_C_Int: interface over A's static members (§2.2), with singleton
//     implementations A_C_Local and A_C_Proxy_<protocol>;
//   - A_O_Factory: object creation (make) and per-constructor
//     initialisation (init) methods (§2.3);
//   - A_C_Factory: class discovery (discover), static initialisation
//     (clinit) and static-access forwarders.
//
// Every reference in transformable code is rewritten to use the extracted
// interfaces, so only make and discover are implementation-aware.
package transform

import "strings"

// Name suffixes of generated classes, following the paper's naming.
const (
	SuffixOInt     = "_O_Int"
	SuffixOLocal   = "_O_Local"
	SuffixOProxy   = "_O_Proxy_"
	SuffixCInt     = "_C_Int"
	SuffixCLocal   = "_C_Local"
	SuffixCProxy   = "_C_Proxy_"
	SuffixOFactory = "_O_Factory"
	SuffixCFactory = "_C_Factory"
)

// Property-method prefixes (§2.1: every attribute becomes a property).
const (
	GetPrefix = "get_"
	SetPrefix = "set_"
)

// Proxy bookkeeping fields present on every generated proxy class.  The
// node runtime reads/writes them directly at the VM level.
const (
	ProxyFieldGUID     = "__guid"
	ProxyFieldEndpoint = "__endpoint"
	ProxyFieldProto    = "__proto"
	ProxyFieldTarget   = "__target" // remote class name
)

// Factory method names (§2.3).
const (
	MakeMethod     = "make"
	InitMethod     = "init"
	DiscoverMethod = "discover"
	ClinitMethod   = "clinit"
	SingletonField = "me"
	SingletonGet   = "get_me"
)

// OInt returns the instance-interface name for class a.
func OInt(a string) string { return a + SuffixOInt }

// OLocal returns the local instance-implementation name for class a.
func OLocal(a string) string { return a + SuffixOLocal }

// OProxy returns the instance-proxy name for class a over a protocol.
func OProxy(a, proto string) string { return a + SuffixOProxy + proto }

// CInt returns the class-interface (statics) name for class a.
func CInt(a string) string { return a + SuffixCInt }

// CLocal returns the local statics-implementation name for class a.
func CLocal(a string) string { return a + SuffixCLocal }

// CProxy returns the statics-proxy name for class a over a protocol.
func CProxy(a, proto string) string { return a + SuffixCProxy + proto }

// OFactory returns the object-factory name for class a.
func OFactory(a string) string { return a + SuffixOFactory }

// CFactory returns the class-factory name for class a.
func CFactory(a string) string { return a + SuffixCFactory }

// Getter and Setter name the property methods for a field.
func Getter(field string) string { return GetPrefix + field }

// Setter names the property setter for a field.
func Setter(field string) string { return SetPrefix + field }

// BaseOfGenerated recovers the original class name from a generated name
// and reports the generated kind ("", if name is not generated).
func BaseOfGenerated(name string) (base, kind string) {
	for _, s := range []string{SuffixOInt, SuffixOLocal, SuffixCInt, SuffixCLocal, SuffixOFactory, SuffixCFactory} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	if i := strings.LastIndex(name, SuffixOProxy); i > 0 {
		return name[:i], SuffixOProxy
	}
	if i := strings.LastIndex(name, SuffixCProxy); i > 0 {
		return name[:i], SuffixCProxy
	}
	return "", ""
}

// IsProxyClass reports whether name is a generated proxy class and, if
// so, whether it is a statics (class-side) proxy, plus its protocol.
func IsProxyClass(name string) (base, proto string, classSide, ok bool) {
	if i := strings.LastIndex(name, SuffixOProxy); i > 0 {
		return name[:i], name[i+len(SuffixOProxy):], false, true
	}
	if i := strings.LastIndex(name, SuffixCProxy); i > 0 {
		return name[:i], name[i+len(SuffixCProxy):], true, true
	}
	return "", "", false, false
}
