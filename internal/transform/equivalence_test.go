package transform

import (
	"testing"
	"testing/quick"

	"rafda/internal/corpus"
	"rafda/internal/minijava"
)

// TestEquivalenceAdvanced pushes less common shapes through the full
// pipeline: deep inheritance of transformed classes, abstract bases,
// cross-class static initialisation order, exceptions thrown in
// constructors, and policy exclusion mixing transformed and
// untransformed classes.
func TestEquivalenceAdvanced(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		exclude []string
	}{
		{"three-level inheritance", `
class L1 {
    int base;
    L1(int b) { this.base = b; }
    int value() { return base; }
    int describe() { return value() * 10; }
}
class L2 extends L1 {
    L2(int b) { super(b + 1); }
    int value() { return base * 2; }
}
class L3 extends L2 {
    L3(int b) { super(b + 1); }
    int value() { return base * 3; }
}
class Main {
    static void main() {
        L1 a = new L1(5);
        L1 b = new L2(5);
        L1 c = new L3(5);
        sys.System.println("" + a.describe() + "," + b.describe() + "," + c.describe());
    }
}`, nil},
		{"abstract base", `
abstract class Shape {
    string name;
    Shape(string n) { this.name = n; }
    abstract int area();
    string show() { return name + "=" + area(); }
}
class Sq extends Shape {
    int s;
    Sq(int s) { super("sq"); this.s = s; }
    int area() { return s * s; }
}
class Rect extends Shape {
    int w; int h;
    Rect(int w, int h) { super("rect"); this.w = w; this.h = h; }
    int area() { return w * h; }
}
class Main {
    static void main() {
        Shape[] shapes = new Shape[2];
        shapes[0] = new Sq(3);
        shapes[1] = new Rect(2, 5);
        for (int i = 0; i < shapes.length; i = i + 1) {
            sys.System.println(shapes[i].show());
        }
    }
}`, nil},
		{"static init chains", `
class A1 {
    static int x = 10;
}
class B1 {
    static int y = A1.x + 5;
    static int get() { return y; }
}
class C1 {
    static int z = B1.get() * 2;
}
class Main {
    static void main() {
        sys.System.println("" + C1.z + "," + B1.y + "," + A1.x);
        A1.x = 99;
        sys.System.println("" + C1.z); // already initialised, unchanged
    }
}`, nil},
		{"constructor throws", `
class Guard {
    int v;
    Guard(int v) {
        if (v < 0) { throw new sys.RuntimeException("neg " + v); }
        this.v = v;
    }
}
class Main {
    static void main() {
        Guard g = new Guard(1);
        sys.System.println("ok " + g.v);
        try {
            Guard bad = new Guard(-2);
            sys.System.println("not reached " + bad.v);
        } catch (sys.RuntimeException e) {
            sys.System.println("caught " + e.getMessage());
        }
    }
}`, nil},
		{"excluded class interops", `
class Kept {
    int mix(int a) { return a + 1; }
}
class Plain {
    int twice(int a) { return a * 2; }
}
class Main {
    static void main() {
        Kept k = new Kept();
        Plain p = new Plain();
        sys.System.println("" + p.twice(k.mix(20)));
    }
}`, []string{"Plain"}},
		{"mutual recursion across classes", `
class Even {
    static bool is(int n) {
        if (n == 0) { return true; }
        return Odd.is(n - 1);
    }
}
class Odd {
    static bool is(int n) {
        if (n == 0) { return false; }
        return Even.is(n - 1);
    }
}
class Main {
    static void main() {
        sys.System.println("" + Even.is(10) + "," + Odd.is(7) + "," + Even.is(3));
    }
}`, nil},
		{"object graph with nulls", `
class Link {
    Link next;
    int v;
    Link(int v, Link next) { this.v = v; this.next = next; }
    int count() {
        if (next == null) { return 1; }
        return 1 + next.count();
    }
    Link reverse(Link acc) {
        Link rest = next;
        next = acc;
        if (rest == null) { return this; }
        return rest.reverse(this);
    }
}
class Main {
    static void main() {
        Link l = new Link(1, new Link(2, new Link(3, null)));
        sys.System.println("n=" + l.count());
        Link r = l.reverse(null);
        sys.System.println("head=" + r.v + " n=" + r.count());
    }
}`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := minijava.Compile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			orig := runOriginal(t, prog, "Main")
			res, err := Transform(prog, Options{Exclude: tc.exclude})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			trans := runTransformedLocal(t, res, "Main")
			if orig != trans {
				t.Fatalf("diverged:\noriginal:    %q\ntransformed: %q", orig, trans)
			}
		})
	}
}

// TestOIntInheritanceChain checks that extracted interfaces mirror the
// class hierarchy so interface references are substitutable along it.
func TestOIntInheritanceChain(t *testing.T) {
	prog, err := minijava.Compile(`
class Base { int b() { return 1; } }
class Mid extends Base { int m() { return 2; } }
class Leaf extends Mid { int l() { return 3; } }
class Main { static void main() {} }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(prog, Options{Protocols: []string{"rrp"}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Program

	leafInt := p.Class("Leaf_O_Int")
	if len(leafInt.Interfaces) != 1 || leafInt.Interfaces[0] != "Mid_O_Int" {
		t.Fatalf("Leaf_O_Int extends %v", leafInt.Interfaces)
	}
	midInt := p.Class("Mid_O_Int")
	if len(midInt.Interfaces) != 1 || midInt.Interfaces[0] != "Base_O_Int" {
		t.Fatalf("Mid_O_Int extends %v", midInt.Interfaces)
	}
	// Local implementations mirror the class chain.
	if p.Class("Leaf_O_Local").Super != "Mid_O_Local" {
		t.Fatalf("Leaf_O_Local super %s", p.Class("Leaf_O_Local").Super)
	}
	// A Leaf reference is assignable to Base_O_Int via the interface
	// graph.
	if !p.AssignableTo("Leaf_O_Local", "Base_O_Int") {
		t.Fatal("Leaf_O_Local not assignable to Base_O_Int")
	}
	// The proxy implements the flattened interface: all three methods.
	proxy := p.Class("Leaf_O_Proxy_rrp")
	for _, m := range []string{"b", "m", "l"} {
		if proxy.Method(m, 0) == nil {
			t.Errorf("proxy missing %s", m)
		}
	}
	if !p.AssignableTo("Leaf_O_Proxy_rrp", "Base_O_Int") {
		t.Fatal("proxy not assignable up the interface chain")
	}
}

// TestAnalysisMonotonicityProperty: excluding additional classes can
// never make more classes transformable.
func TestAnalysisMonotonicityProperty(t *testing.T) {
	params := corpus.JDKLike()
	params.Classes = 300
	prog := corpus.Generate(params)
	names := prog.SortedNames()

	f := func(seed uint16) bool {
		// Pick a deterministic subset to exclude.
		var excl []string
		s := uint32(seed)
		for _, n := range names {
			s = s*1664525 + 1013904223
			if s%7 == 0 {
				excl = append(excl, n)
			}
		}
		base := Analyze(prog).Stats().Transformable
		more := Analyze(prog, excl...).Stats().Transformable
		return more <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTransformIdempotentOnNonTransformable: classes the analysis rejects
// appear verbatim in the output.
func TestTransformIdempotentOnNonTransformable(t *testing.T) {
	prog, err := minijava.Compile(`
class HasNative { native int n(); int plain() { return 2; } }
class Main { static void main() { } }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig := prog.Class("HasNative")
	kept := res.Program.Class("HasNative")
	if kept == nil {
		t.Fatal("non-transformable class dropped")
	}
	if kept == orig {
		t.Fatal("output aliases input class (must be a clone)")
	}
	if len(kept.Methods) != len(orig.Methods) {
		t.Fatal("non-transformable class was modified")
	}
	if res.Program.Has("HasNative_O_Int") {
		t.Fatal("generated family for non-transformable class")
	}
}

// TestSubstitutableAndReconstruct covers the archive-reload path.
func TestSubstitutableAndReconstruct(t *testing.T) {
	prog, err := minijava.Compile(`
class C { int v; C(int v) { this.v = v; } }
class Main { static void main() {} }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(prog, Options{Protocols: []string{"rrp", "soap"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Substitutable("C") || res.Substitutable("sys.Object") || res.Substitutable("Nope") {
		t.Fatal("Substitutable wrong")
	}
	rec, err := Reconstruct(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Substitutable("C") || !rec.Substitutable("Main") {
		t.Fatal("reconstructed substitutable set wrong")
	}
	protos := map[string]bool{}
	for _, p := range rec.Protocols {
		protos[p] = true
	}
	if !protos["rrp"] || !protos["soap"] {
		t.Fatalf("reconstructed protocols %v", rec.Protocols)
	}
	// A plain program is rejected.
	if _, err := Reconstruct(prog); err == nil {
		t.Fatal("plain program reconstructed")
	}
}
