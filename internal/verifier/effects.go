package verifier

import (
	"strings"

	"rafda/internal/ir"
)

// Effects is a whole-program method-effect classification: for every
// (class, method) it answers "can executing this method mutate any
// state that existed before the call?".  The runtime's replication
// plane uses it to split proxy invocations into reads — routable to
// any live replica — and writes, which must serialise through the
// lease-holding primary (docs/REPLICATION.md).  The analysis is
// conservative: a method classifies read-only only when that is
// provable from the IR, so misclassification can cost read-scaling but
// never correctness.
//
// A method is a writer when any of these hold, transitively through
// the call graph:
//
//   - its body stores into state that may predate the call: OpPutField,
//     OpAStore or OpPutStatic whose target object is not provably
//     freshly allocated.  A small abstract-stack simulation tracks
//     freshness (OpNew/OpNewArray push fresh values, OpDup preserves
//     them), which is what keeps the compiler's missing-return
//     epilogue — new sys.RuntimeException; <init>; throw — from
//     tainting every value-returning method;
//   - it is native (semantics unknown to the IR — the generated proxy
//     and factory classes land here, as does anything the runtime
//     registers by hand);
//   - it calls a writer.  Static and special invokes resolve to one
//     target; virtual and interface invokes taint through every
//     concrete declaration of the method key anywhere in the program.
//
// Constructors are classified by the same rules with one refinement:
// stores into their own receiver (`this`) don't count, because every
// reachable constructor call in the IR initialises either a freshly
// allocated object or the receiver another constructor is already
// initialising.  A constructor that writes statics or foreign objects
// is a writer like any other method.
//
// The classification is computed once over the immutable post-boot
// program (CONCURRENCY.md §3) and read lock-free afterwards.
type Effects struct {
	writer map[string]bool // effectKey -> mutates pre-existing state
}

func effectKey(class, methodKey string) string {
	return class + "\x00" + methodKey
}

// unknownTarget is the sentinel callee for invokes the resolver cannot
// name; it is pre-marked writer so calling into the unknown is never
// proven pure.
const unknownTarget = "\x00unknown"

// absVal abstracts one operand-stack slot for the freshness simulation.
type absVal uint8

const (
	avOther absVal = iota // anything that may alias pre-existing state
	avFresh               // allocated inside this method, not yet escaped
	avSelf                // the receiver (local slot 0 of an instance method)
)

// AnalyzeEffects classifies every concrete method in p.  Native methods
// are writers; use AnalyzeEffectsAliased to classify programs containing
// generated forwarding classes.
func AnalyzeEffects(p *ir.Program) *Effects {
	return AnalyzeEffectsAliased(p, nil)
}

// AnalyzeEffectsAliased classifies every concrete method in p, with an
// optional alias hook for forwarding classes: when alias(class) returns
// a twin class, each native method of class is given the effects of the
// same method key on the twin instead of the blanket writer rule.  The
// transformed programs the runtime executes need this for their proxy
// families — a proxy's native method forwards the invocation to the
// remote A_O_Local twin, so its effect on the target object's state is
// exactly the twin method's; without the alias every interface call
// site would taint through the proxy implementations and nothing in a
// transformed program could classify read-only.
func AnalyzeEffectsAliased(p *ir.Program, alias func(class string) (twin string, ok bool)) *Effects {
	e := &Effects{writer: make(map[string]bool)}
	e.writer[unknownTarget] = true
	// calls[m] lists the method keys m invokes (resolved targets for
	// exact dispatch, every concrete declaration for dynamic dispatch);
	// a caller is tainted by any tainted callee.
	calls := make(map[string][]string)
	overrides := overrideTable(p)

	for _, c := range p.Classes() {
		var twin string
		if alias != nil {
			twin, _ = alias(c.Name)
		}
		for _, m := range c.Methods {
			key := effectKey(c.Name, m.Key())
			switch {
			case m.Native && twin != "":
				e.writer[key] = false
				calls[key] = []string{effectKey(twin, m.Key())}
				continue
			case m.Native:
				e.writer[key] = true
				continue
			case m.Abstract:
				// No body of its own; dynamic dispatch reaches the
				// overrides directly, so the declaration is neutral.
				continue
			}
			writes, callees := scanMethod(p, m, overrides)
			e.writer[key] = writes
			if !writes {
				calls[key] = callees
			}
		}
	}

	// Fixpoint: taint along call edges until stable.  The call graph is
	// small (one transformed program), so the quadratic worst case is
	// irrelevant next to clarity.
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if e.writer[caller] {
				continue
			}
			for _, callee := range callees {
				// A callee the analysis never saw (e.g. an alias edge to
				// a method the twin doesn't declare) is a writer.
				if w, ok := e.writer[callee]; ok && !w {
					continue
				}
				e.writer[caller] = true
				changed = true
				break
			}
		}
	}
	return e
}

// scanMethod walks one body under the freshness simulation, returning
// whether it directly mutates pre-existing state and which methods it
// calls.  The simulation is linear and resets to an empty abstract
// stack at every join point (jump target, exception handler entry,
// post-terminator), where popping an empty stack conservatively yields
// avOther — so control-flow merges can only lose freshness, never
// invent it.
func scanMethod(p *ir.Program, m *ir.Method, overrides map[string][]string) (writes bool, callees []string) {
	joins := make(map[int]bool)
	for _, in := range m.Code {
		if in.IsJump() {
			joins[int(in.A)] = true
		}
	}
	for _, h := range m.Handlers {
		joins[h.Target] = true
	}
	inCtor := m.IsConstructor()

	var stack []absVal
	pop := func() absVal {
		if len(stack) == 0 {
			return avOther
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	popN := func(n int) {
		for i := 0; i < n; i++ {
			pop()
		}
	}
	push := func(v absVal) { stack = append(stack, v) }

	for pc, in := range m.Code {
		if joins[pc] {
			stack = stack[:0]
		}
		switch in.Op {
		case ir.OpConstInt, ir.OpConstFloat, ir.OpConstString, ir.OpConstBool,
			ir.OpConstNull, ir.OpGetStatic:
			push(avOther)
		case ir.OpLoad:
			if in.A == 0 && !m.Static {
				push(avSelf)
			} else {
				push(avOther)
			}
		case ir.OpStore, ir.OpPop:
			pop()
		case ir.OpDup:
			v := pop()
			push(v)
			push(v)
		case ir.OpSwap:
			a, b := pop(), pop()
			push(a)
			push(b)
		case ir.OpNew:
			push(avFresh)
		case ir.OpNewArray:
			pop() // length
			push(avFresh)
		case ir.OpGetField:
			pop()
			push(avOther)
		case ir.OpPutField:
			pop() // value
			switch recv := pop(); {
			case recv == avFresh:
				// Initialising an object this method just allocated
				// mutates nothing that existed before the call.
			case recv == avSelf && inCtor:
				// A constructor initialising its own receiver: confined
				// to the object under construction.
			default:
				writes = true
			}
		case ir.OpPutStatic:
			pop()
			writes = true
		case ir.OpALoad:
			popN(2)
			push(avOther)
		case ir.OpAStore:
			pop() // value
			pop() // index
			if pop() != avFresh {
				writes = true
			}
		case ir.OpArrayLen:
			pop()
			push(avOther)
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpConcat,
			ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe:
			popN(2)
			push(avOther)
		case ir.OpNeg, ir.OpNot, ir.OpCast, ir.OpInstanceOf:
			pop()
			push(avOther)
		case ir.OpInvokeStatic:
			popN(in.NArgs)
			callees = append(callees, resolveExact(p, in))
			if !isVoidCall(p, in) {
				push(avOther)
			}
		case ir.OpInvokeSpecial:
			popN(in.NArgs)
			recv := pop()
			if in.Member == ir.ConstructorName {
				// Constructing a fresh object (or chaining to super from
				// inside a constructor) confines the callee's
				// self-writes to an object that didn't exist before this
				// call; the callee's classification still propagates any
				// writes beyond its own receiver.  Any other receiver
				// shape would re-initialise pre-existing state: writer.
				if recv != avFresh && !(recv == avSelf && inCtor) {
					writes = true
				}
				callees = append(callees, resolveExact(p, in))
			} else {
				callees = append(callees, resolveExact(p, in))
			}
			if !isVoidCall(p, in) {
				push(avOther)
			}
		case ir.OpInvokeVirtual, ir.OpInvokeInterface:
			popN(in.NArgs + 1)
			callees = append(callees, overrides[ir.MethodKey(in.Member, in.NArgs)]...)
			if !isVoidCall(p, in) {
				push(avOther)
			}
		case ir.OpJump, ir.OpJumpIf, ir.OpJumpIfNot:
			if in.Op != ir.OpJump {
				pop()
			}
			stack = stack[:0]
		case ir.OpReturn, ir.OpReturnValue, ir.OpThrow:
			stack = stack[:0]
		}
	}
	return writes, callees
}

// isVoidCall reports whether the invoke at in returns nothing.  An
// unresolvable callee claims a pushed result; the stack being off by
// one after it only loses freshness precision, never soundness.
func isVoidCall(p *ir.Program, in ir.Instr) bool {
	_, m, err := p.ResolveMethod(in.Owner, in.Member, in.NArgs)
	if err != nil || m == nil {
		return false
	}
	return m.Return.Kind == ir.KindVoid
}

// resolveExact names the single target of a static/special invoke,
// walking the super chain the way the VM's exact dispatch does.
func resolveExact(p *ir.Program, in ir.Instr) string {
	cls, m, err := p.ResolveMethod(in.Owner, in.Member, in.NArgs)
	if err != nil || cls == nil || m == nil {
		return unknownTarget
	}
	return effectKey(cls.Name, m.Key())
}

// overrideTable maps each method key to every concrete declaration of it
// anywhere in the program.  Dynamic dispatch on a receiver of declared
// type T can, after subtyping, land on any of them; distinguishing by
// assignability to the call site's Owner would prune very little in the
// transformed programs this runs on (every A_O_Local implements its
// interface) and costs a per-site subtype walk, so the table is shared.
func overrideTable(p *ir.Program) map[string][]string {
	t := make(map[string][]string)
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if m.Abstract || m.IsConstructor() || m.IsStaticInit() {
				continue
			}
			mk := m.Key()
			t[mk] = append(t[mk], effectKey(c.Name, mk))
		}
	}
	return t
}

// ReadOnly reports whether method (name/nargs key) on class is provably
// free of writes to pre-existing state.  Unknown methods are writers;
// constructor and static-initialiser keys always report writer — they
// exist to write, and the replication plane never routes them.
func (e *Effects) ReadOnly(class, methodKey string) bool {
	if e == nil {
		return false
	}
	if strings.HasPrefix(methodKey, ir.ConstructorName+"/") ||
		strings.HasPrefix(methodKey, ir.StaticInitName+"/") {
		return false
	}
	key := effectKey(class, methodKey)
	if w, ok := e.writer[key]; ok {
		return !w
	}
	// Not analysed (e.g. a runtime-registered native): writer.
	return false
}

// ReadOnlyCount reports how many analysed methods of class are
// read-only, for diagnostics and tests.
func (e *Effects) ReadOnlyCount(class string) (readOnly, total int) {
	prefix := class + "\x00"
	for key, w := range e.writer {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		total++
		if !w {
			readOnly++
		}
	}
	return readOnly, total
}
