// Package verifier checks IR programs before execution or
// transformation, standing in for the JVM bytecode verifier: the paper
// relies on transformations being "performed on code that has already
// been verified by a standard compiler".  The front end's output and the
// transformer's output are both verified in tests, which guards the
// transformation's structural correctness independently of execution.
package verifier

import (
	"fmt"

	"rafda/internal/ir"
)

// Error is one verification failure.
type Error struct {
	Class  string
	Method string // empty for class-level problems
	PC     int    // -1 when not code-related
	Msg    string
}

func (e *Error) Error() string {
	switch {
	case e.Method == "":
		return fmt.Sprintf("%s: %s", e.Class, e.Msg)
	case e.PC < 0:
		return fmt.Sprintf("%s.%s: %s", e.Class, e.Method, e.Msg)
	default:
		return fmt.Sprintf("%s.%s pc=%d: %s", e.Class, e.Method, e.PC, e.Msg)
	}
}

// Verify checks the whole program and returns every problem found.
func Verify(p *ir.Program) []error {
	v := &verifier{p: p}
	for _, missing := range p.MissingReferences() {
		v.errs = append(v.errs, &Error{Class: missing, PC: -1, Msg: "referenced class is missing from the program"})
	}
	v.checkHierarchy()
	for _, c := range p.Classes() {
		v.checkClass(c)
	}
	return v.errs
}

// VerifyOne checks a single class against the program.
func VerifyOne(p *ir.Program, c *ir.Class) []error {
	v := &verifier{p: p}
	v.checkClass(c)
	return v.errs
}

type verifier struct {
	p    *ir.Program
	errs []error
}

func (v *verifier) errf(class, method string, pc int, format string, a ...any) {
	v.errs = append(v.errs, &Error{Class: class, Method: method, PC: pc, Msg: fmt.Sprintf(format, a...)})
}

// checkHierarchy detects superclass/interface cycles.
func (v *verifier) checkHierarchy() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var visit func(name string) bool
	visit = func(name string) bool {
		switch state[name] {
		case grey:
			return false
		case black:
			return true
		}
		state[name] = grey
		c := v.p.Class(name)
		if c != nil {
			if c.Super != "" && v.p.Has(c.Super) {
				if !visit(c.Super) {
					v.errf(name, "", -1, "superclass cycle through %s", c.Super)
				}
			}
			for _, i := range c.Interfaces {
				if v.p.Has(i) {
					if !visit(i) {
						v.errf(name, "", -1, "interface cycle through %s", i)
					}
				}
			}
		}
		state[name] = black
		return true
	}
	for _, n := range v.p.Names() {
		visit(n)
	}
}

func (v *verifier) checkClass(c *ir.Class) {
	// Superclass constraints.
	if c.Super != "" {
		if sc := v.p.Class(c.Super); sc != nil {
			if sc.IsInterface {
				v.errf(c.Name, "", -1, "superclass %s is an interface", c.Super)
			}
			if sc.Final {
				v.errf(c.Name, "", -1, "superclass %s is final", c.Super)
			}
		}
	}
	if c.IsInterface {
		if c.Super != "" {
			v.errf(c.Name, "", -1, "interface has a superclass")
		}
		if len(c.Fields) > 0 {
			v.errf(c.Name, "", -1, "interface declares fields")
		}
	}
	for _, i := range c.Interfaces {
		if ic := v.p.Class(i); ic != nil && !ic.IsInterface {
			v.errf(c.Name, "", -1, "implements non-interface %s", i)
		}
	}
	// Member uniqueness.
	fields := map[string]bool{}
	for _, f := range c.Fields {
		if fields[f.Name] {
			v.errf(c.Name, "", -1, "duplicate field %s", f.Name)
		}
		fields[f.Name] = true
		v.checkType(c.Name, "", f.Type, false)
	}
	methods := map[string]bool{}
	for _, m := range c.Methods {
		if methods[m.Key()] {
			v.errf(c.Name, m.Name, -1, "duplicate method (same name and arity)")
		}
		methods[m.Key()] = true
		v.checkMethod(c, m)
	}
	// Concrete classes must implement their interfaces.
	if !c.IsInterface && !c.Abstract {
		v.checkImplements(c)
	}
}

func (v *verifier) checkImplements(c *ir.Class) {
	seen := map[string]bool{}
	var require func(iface string)
	require = func(iface string) {
		if seen[iface] {
			return
		}
		seen[iface] = true
		ic := v.p.Class(iface)
		if ic == nil {
			return
		}
		for _, m := range ic.Methods {
			if dc, dm, err := v.p.ResolveMethod(c.Name, m.Name, len(m.Params)); err != nil || dm.Abstract {
				_ = dc
				v.errf(c.Name, "", -1, "does not implement %s.%s/%d", iface, m.Name, len(m.Params))
			}
		}
		for _, super := range ic.Interfaces {
			require(super)
		}
	}
	visited := map[string]bool{}
	for cur := c; cur != nil && !visited[cur.Name]; {
		visited[cur.Name] = true
		for _, i := range cur.Interfaces {
			require(i)
		}
		if cur.Super == "" {
			break
		}
		cur = v.p.Class(cur.Super)
	}
	// Abstract methods inherited from abstract superclasses must be
	// overridden somewhere in the chain.
	visited = map[string]bool{c.Name: true}
	for cur := v.classOf(c.Super); cur != nil && !visited[cur.Name]; cur = v.classOf(cur.Super) {
		visited[cur.Name] = true
		for _, m := range cur.Methods {
			if !m.Abstract {
				continue
			}
			if _, dm, err := v.p.ResolveMethod(c.Name, m.Name, len(m.Params)); err != nil || dm.Abstract {
				v.errf(c.Name, "", -1, "abstract method %s.%s/%d not implemented", cur.Name, m.Name, len(m.Params))
			}
		}
	}
}

func (v *verifier) classOf(name string) *ir.Class {
	if name == "" {
		return nil
	}
	return v.p.Class(name)
}

func (v *verifier) checkType(class, method string, t ir.Type, allowVoid bool) {
	base := t.BaseElem()
	if base.Kind == ir.KindVoid && (!allowVoid || t.IsArray()) {
		v.errf(class, method, -1, "void used as a value type")
	}
	if base.Kind == ir.KindRef && !v.p.Has(base.Name) {
		v.errf(class, method, -1, "unknown type %s", base.Name)
	}
}

func (v *verifier) checkMethod(c *ir.Class, m *ir.Method) {
	for _, pt := range m.Params {
		v.checkType(c.Name, m.Name, pt, false)
	}
	v.checkType(c.Name, m.Name, m.Return, true)

	switch {
	case m.Abstract && len(m.Code) > 0:
		v.errf(c.Name, m.Name, -1, "abstract method has code")
	case m.Native && len(m.Code) > 0:
		v.errf(c.Name, m.Name, -1, "native method has code")
	case m.Abstract && m.Native:
		v.errf(c.Name, m.Name, -1, "method is both abstract and native")
	case c.IsInterface && !m.Abstract:
		v.errf(c.Name, m.Name, -1, "interface method must be abstract")
	case !m.Abstract && !m.Native && len(m.Code) == 0:
		v.errf(c.Name, m.Name, -1, "concrete method has no code")
	}
	if m.IsConstructor() && m.Static {
		v.errf(c.Name, m.Name, -1, "constructor cannot be static")
	}
	if m.IsStaticInit() && !m.Static {
		v.errf(c.Name, m.Name, -1, "<clinit> must be static")
	}
	if len(m.Code) > 0 {
		v.checkCode(c, m)
	}
	for _, h := range m.Handlers {
		if h.Start < 0 || h.End > len(m.Code) || h.Start >= h.End {
			v.errf(c.Name, m.Name, -1, "handler range [%d,%d) invalid", h.Start, h.End)
		}
		if h.Target < 0 || h.Target >= len(m.Code) {
			v.errf(c.Name, m.Name, -1, "handler target %d out of range", h.Target)
		}
		if h.CatchClass != "" && !v.p.Has(h.CatchClass) {
			v.errf(c.Name, m.Name, -1, "handler catches unknown class %s", h.CatchClass)
		}
	}
}
