package verifier

import (
	"testing"

	"rafda/internal/ir"
	"rafda/internal/transform"
)

const effectsSource = `
class Counter {
    int n;
    int[] log;
    Counter(int n) { this.n = n; }
    int get() { return n; }
    int doubled() { return this.get() * 2; }
    void bump() { n = n + 1; }
    int bumpAndGet() { this.bump(); return this.get(); }
    int peekVia(Counter other) { return other.get(); }
    int tally() {
        int s = 0;
        for (int i = 0; i < 3; i = i + 1) { s = s + this.get(); }
        return s;
    }
    void record(int v) { log[0] = v; }
    int shout() { sys.System.println("n"); return n; }
}
class Main {
    static void main() { sys.System.println("x"); }
}`

func analyze(t *testing.T) *Effects {
	t.Helper()
	p := compile(t, effectsSource)
	return AnalyzeEffects(p)
}

func TestEffectsDirectClassification(t *testing.T) {
	e := analyze(t)
	cases := []struct {
		method   string
		nargs    int
		readOnly bool
	}{
		{"get", 0, true},         // field read only
		{"doubled", 0, true},     // calls a read-only method
		{"peekVia", 1, true},     // reads through another receiver
		{"tally", 0, true},       // loop of pure calls
		{"bump", 0, false},       // OpPutField
		{"bumpAndGet", 0, false}, // calls a writer
		{"record", 1, false},     // OpAStore
		{"shout", 0, false},      // calls a native (println): unknown semantics
	}
	for _, c := range cases {
		got := e.ReadOnly("Counter", ir.MethodKey(c.method, c.nargs))
		if got != c.readOnly {
			t.Errorf("Counter.%s/%d: ReadOnly = %v, want %v", c.method, c.nargs, got, c.readOnly)
		}
	}
	// Constructors always write.
	if e.ReadOnly("Counter", ir.MethodKey(ir.ConstructorName, 1)) {
		t.Error("constructor classified read-only")
	}
	// Unknown methods default to writer.
	if e.ReadOnly("Counter", ir.MethodKey("nosuch", 0)) {
		t.Error("unknown method classified read-only")
	}
	if e.ReadOnly("NoClass", ir.MethodKey("get", 0)) {
		t.Error("unknown class classified read-only")
	}
}

// TestEffectsVirtualDispatchTaint pins the conservative virtual-dispatch
// rule: a call site whose method key has any writing override anywhere
// in the program taints the caller, even if the static receiver type's
// own implementation is pure.
func TestEffectsVirtualDispatchTaint(t *testing.T) {
	src := `
class A {
    int probe() { return 1; }
    int use(A a) { return a.probe(); }
}
class B extends A {
    int x;
    int probe() { x = x + 1; return x; }
}
class Main { static void main() { sys.System.println("x"); } }`
	e := AnalyzeEffects(compile(t, src))
	if e.ReadOnly("A", ir.MethodKey("use", 1)) {
		t.Error("use/1 should be tainted by B's writing override of probe/0")
	}
	if !e.ReadOnly("A", ir.MethodKey("probe", 0)) {
		t.Error("A.probe/0 itself is pure and should classify read-only")
	}
}

// TestEffectsSurviveTransform checks the classification holds on the
// transformed program — where the runtime actually queries it: the
// A_O_Local class carries the original bodies, so its read-only methods
// stay provable, while the generated accessors split correctly into
// getter (read) and setter (write).
func TestEffectsSurviveTransform(t *testing.T) {
	p := compile(t, effectsSource)
	res, err := transform.Transform(p, transform.Options{Protocols: []string{"rrp"}})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	e := AnalyzeEffectsAliased(res.Program, func(name string) (string, bool) {
		base, _, classSide, ok := transform.IsProxyClass(name)
		if !ok {
			return "", false
		}
		if classSide {
			return transform.CLocal(base), true
		}
		return transform.OLocal(base), true
	})
	local := transform.OLocal("Counter")
	if !e.ReadOnly(local, ir.MethodKey("get", 0)) {
		t.Errorf("%s.get/0 not read-only after transform", local)
	}
	if !e.ReadOnly(local, ir.MethodKey("doubled", 0)) {
		t.Errorf("%s.doubled/0 not read-only after transform", local)
	}
	if e.ReadOnly(local, ir.MethodKey("bump", 0)) {
		t.Errorf("%s.bump/0 classified read-only after transform", local)
	}
	if !e.ReadOnly(local, ir.MethodKey(transform.Getter("n"), 0)) {
		t.Errorf("generated getter not read-only")
	}
	if e.ReadOnly(local, ir.MethodKey(transform.Setter("n"), 1)) {
		t.Errorf("generated setter classified read-only")
	}
	ro, total := e.ReadOnlyCount(local)
	if total == 0 || ro == 0 || ro >= total {
		t.Errorf("ReadOnlyCount(%s) = %d/%d, want a strict mix", local, ro, total)
	}
}
