package verifier

import (
	"rafda/internal/ir"
)

// checkCode performs a stack-effect dataflow analysis of a method body:
// every instruction's operands must resolve, jump targets must be in
// range, the operand-stack depth must be consistent at every join point,
// no instruction may underflow the stack, and execution may not fall off
// the end of the code.
func (v *verifier) checkCode(c *ir.Class, m *ir.Method) {
	code := m.Code
	n := len(code)

	// First pass: per-instruction validity and stack effects.
	type effect struct {
		pop, push int
		ends      bool // return/throw
		jumps     bool
		condJump  bool
	}
	effects := make([]effect, n)
	ok := true
	for pc, in := range code {
		eff, valid := v.instrEffect(c, m, pc, in)
		if !valid {
			ok = false
			continue
		}
		effects[pc] = eff
		if in.IsJump() {
			if in.A < 0 || in.A >= int64(n) {
				v.errf(c.Name, m.Name, pc, "jump target %d out of range [0,%d)", in.A, n)
				ok = false
			}
		}
	}
	if !ok {
		return
	}

	// Second pass: worklist depth analysis over the CFG, including
	// exception edges (handler entry has depth 1: the thrown object).
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1 // unvisited
	}
	var work []int
	setDepth := func(pc, d int) {
		if pc < 0 || pc >= n {
			return
		}
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, pc)
		} else if depth[pc] != d {
			v.errf(c.Name, m.Name, pc, "inconsistent stack depth at join: %d vs %d", depth[pc], d)
			ok = false
		}
	}
	setDepth(0, 0)
	for _, h := range m.Handlers {
		setDepth(h.Target, 1)
	}
	for len(work) > 0 && ok {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		d := depth[pc]
		eff := effects[pc]
		if d < eff.pop {
			v.errf(c.Name, m.Name, pc, "stack underflow: depth %d, need %d", d, eff.pop)
			return
		}
		next := d - eff.pop + eff.push
		if eff.ends {
			continue
		}
		in := code[pc]
		if eff.jumps {
			setDepth(int(in.A), next)
			if !eff.condJump {
				continue
			}
		}
		if pc+1 >= n {
			v.errf(c.Name, m.Name, pc, "execution can fall off the end of the code")
			return
		}
		setDepth(pc+1, next)
	}
}

// instrEffect computes (pop, push) for one instruction and validates its
// operands.
func (v *verifier) instrEffect(c *ir.Class, m *ir.Method, pc int, in ir.Instr) (eff struct {
	pop, push int
	ends      bool
	jumps     bool
	condJump  bool
}, ok bool) {
	fail := func(format string, a ...any) {
		v.errf(c.Name, m.Name, pc, format, a...)
	}
	push := func(n int) { eff.push = n }
	pop := func(n int) { eff.pop = n }

	switch in.Op {
	case ir.OpConstInt, ir.OpConstFloat, ir.OpConstString, ir.OpConstBool, ir.OpConstNull:
		push(1)

	case ir.OpLoad:
		if in.A < 0 {
			fail("load of negative slot %d", in.A)
			return eff, false
		}
		push(1)
	case ir.OpStore:
		if in.A < 0 {
			fail("store to negative slot %d", in.A)
			return eff, false
		}
		pop(1)

	case ir.OpDup:
		pop(1)
		push(2)
	case ir.OpPop:
		pop(1)
	case ir.OpSwap:
		pop(2)
		push(2)

	case ir.OpNew:
		tc := v.p.Class(in.Owner)
		if tc == nil {
			fail("new of unknown class %s", in.Owner)
			return eff, false
		}
		if tc.IsInterface || tc.Abstract {
			fail("new of non-instantiable %s", in.Owner)
			return eff, false
		}
		push(1)

	case ir.OpGetField, ir.OpPutField:
		if _, _, err := v.p.ResolveField(in.Owner, in.Member); err != nil {
			fail("unresolved field %s.%s", in.Owner, in.Member)
			return eff, false
		}
		if in.Op == ir.OpGetField {
			pop(1)
			push(1)
		} else {
			pop(2)
		}

	case ir.OpGetStatic, ir.OpPutStatic:
		dc, f, err := v.p.ResolveField(in.Owner, in.Member)
		if err != nil || !f.Static {
			fail("unresolved static field %s.%s", in.Owner, in.Member)
			return eff, false
		}
		_ = dc
		if in.Op == ir.OpGetStatic {
			push(1)
		} else {
			pop(1)
		}

	case ir.OpInvokeStatic, ir.OpInvokeVirtual, ir.OpInvokeInterface, ir.OpInvokeSpecial:
		dc, dm, err := v.p.ResolveMethod(in.Owner, in.Member, in.NArgs)
		if err != nil {
			fail("unresolved method %s.%s/%d", in.Owner, in.Member, in.NArgs)
			return eff, false
		}
		_ = dc
		if in.Op == ir.OpInvokeStatic && !dm.Static {
			fail("invokestatic of instance method %s.%s", in.Owner, in.Member)
			return eff, false
		}
		if in.Op != ir.OpInvokeStatic && dm.Static {
			fail("instance invoke of static method %s.%s", in.Owner, in.Member)
			return eff, false
		}
		npop := in.NArgs
		if in.Op != ir.OpInvokeStatic {
			npop++
		}
		pop(npop)
		if !dm.Return.IsVoid() {
			push(1)
		}

	case ir.OpNewArray:
		if in.TypeRef == nil {
			fail("newarray without element type")
			return eff, false
		}
		v.checkType(c.Name, m.Name, *in.TypeRef, false)
		pop(1)
		push(1)
	case ir.OpALoad:
		pop(2)
		push(1)
	case ir.OpAStore:
		pop(3)
	case ir.OpArrayLen:
		pop(1)
		push(1)

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpConcat,
		ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe:
		pop(2)
		push(1)
	case ir.OpNeg, ir.OpNot:
		pop(1)
		push(1)

	case ir.OpJump:
		eff.jumps = true
	case ir.OpJumpIf, ir.OpJumpIfNot:
		pop(1)
		eff.jumps = true
		eff.condJump = true

	case ir.OpCast, ir.OpInstanceOf:
		if in.TypeRef == nil {
			fail("%s without target type", in.Op)
			return eff, false
		}
		v.checkType(c.Name, m.Name, *in.TypeRef, false)
		pop(1)
		push(1)

	case ir.OpReturn:
		if !m.Return.IsVoid() {
			fail("void return in non-void method")
			return eff, false
		}
		eff.ends = true
	case ir.OpReturnValue:
		if m.Return.IsVoid() {
			fail("value return in void method")
			return eff, false
		}
		pop(1)
		eff.ends = true
	case ir.OpThrow:
		pop(1)
		eff.ends = true

	default:
		fail("invalid opcode %v", in.Op)
		return eff, false
	}
	return eff, true
}
