package verifier

import (
	"strings"
	"testing"

	"rafda/internal/ir"
	"rafda/internal/minijava"
	"rafda/internal/stdlib"
	"rafda/internal/transform"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const goodSource = `
class Pair {
    int a;
    int b;
    Pair(int a, int b) { this.a = a; this.b = b; }
    int sum() { return a + b; }
    static Pair of(int a, int b) { return new Pair(a, b); }
}
class Main {
    static void main() {
        Pair p = Pair.of(1, 2);
        sys.System.println("sum=" + p.sum());
        try {
            int x = 1 / (p.sum() - 3);
            sys.System.println("x=" + x);
        } catch (sys.ArithmeticException e) {
            sys.System.println("div0");
        }
        int[] xs = new int[3];
        for (int i = 0; i < xs.length; i = i + 1) { xs[i] = i; }
        while (p.sum() < 0) { break; }
    }
}`

func TestCompilerOutputVerifies(t *testing.T) {
	p := compile(t, goodSource)
	if errs := Verify(p); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("unexpected: %v", e)
		}
	}
}

func TestSystemLibraryVerifies(t *testing.T) {
	if errs := Verify(stdlib.Program()); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("unexpected: %v", e)
		}
	}
}

// TestTransformedOutputVerifies is the key structural guarantee: the
// transformer's generated program is itself verifiable.
func TestTransformedOutputVerifies(t *testing.T) {
	p := compile(t, goodSource)
	res, err := transform.Transform(p, transform.Options{})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if errs := Verify(res.Program); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("transformed program: %v", e)
		}
	}
}

func mustContainError(t *testing.T, errs []error, frag string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return
		}
	}
	t.Fatalf("no error containing %q in %v", frag, errs)
}

func baseProgram() *ir.Program { return stdlib.Program() }

func TestMissingReference(t *testing.T) {
	p := baseProgram()
	p.MustAdd(&ir.Class{
		Name:  "Orphan",
		Super: ir.ObjectClass,
		Fields: []ir.Field{
			{Name: "f", Type: ir.Ref("Ghost"), Access: ir.AccessPrivate},
		},
	})
	mustContainError(t, Verify(p), "missing from the program")
}

func TestHierarchyCycle(t *testing.T) {
	p := baseProgram()
	p.MustAdd(&ir.Class{Name: "A", Super: "B"})
	p.MustAdd(&ir.Class{Name: "B", Super: "A"})
	mustContainError(t, Verify(p), "superclass cycle")
}

func TestDuplicateMembers(t *testing.T) {
	p := baseProgram()
	p.MustAdd(&ir.Class{
		Name:  "Dup",
		Super: ir.ObjectClass,
		Fields: []ir.Field{
			{Name: "x", Type: ir.Int},
			{Name: "x", Type: ir.Int},
		},
	})
	mustContainError(t, Verify(p), "duplicate field")
}

func TestAbstractWithCode(t *testing.T) {
	p := baseProgram()
	p.MustAdd(&ir.Class{
		Name: "Bad", Super: ir.ObjectClass, Abstract: true,
		Methods: []*ir.Method{{
			Name: "m", Return: ir.Void, Abstract: true,
			Code: []ir.Instr{{Op: ir.OpReturn}},
		}},
	})
	mustContainError(t, Verify(p), "abstract method has code")
}

func TestUnimplementedInterface(t *testing.T) {
	p := baseProgram()
	p.MustAdd(&ir.Class{
		Name: "I", IsInterface: true, Abstract: true,
		Methods: []*ir.Method{{Name: "m", Return: ir.Void, Abstract: true}},
	})
	p.MustAdd(&ir.Class{
		Name: "C", Super: ir.ObjectClass, Interfaces: []string{"I"},
	})
	mustContainError(t, Verify(p), "does not implement I.m/0")
}

func method(code ...ir.Instr) *ir.Method {
	return &ir.Method{Name: "m", Return: ir.Void, Access: ir.AccessPublic, Code: code, MaxLocals: 4}
}

func classWith(m *ir.Method) *ir.Program {
	p := stdlib.Program()
	p.MustAdd(&ir.Class{Name: "T", Super: ir.ObjectClass, Methods: []*ir.Method{m}})
	return p
}

func TestStackUnderflow(t *testing.T) {
	p := classWith(method(
		ir.Instr{Op: ir.OpPop},
		ir.Instr{Op: ir.OpReturn},
	))
	mustContainError(t, Verify(p), "underflow")
}

func TestJumpOutOfRange(t *testing.T) {
	p := classWith(method(
		ir.Instr{Op: ir.OpJump, A: 99},
		ir.Instr{Op: ir.OpReturn},
	))
	mustContainError(t, Verify(p), "out of range")
}

func TestFallOffEnd(t *testing.T) {
	p := classWith(method(
		ir.Instr{Op: ir.OpConstInt, A: 1},
		ir.Instr{Op: ir.OpPop},
	))
	mustContainError(t, Verify(p), "fall off the end")
}

func TestInconsistentJoinDepth(t *testing.T) {
	p := classWith(method(
		ir.Instr{Op: ir.OpConstBool, A: 1}, // 0: depth 0 -> 1
		ir.Instr{Op: ir.OpJumpIf, A: 3},    // 1: -> depth 0 both ways
		ir.Instr{Op: ir.OpConstInt, A: 5},  // 2: depth 0 -> 1
		ir.Instr{Op: ir.OpReturn},          // 3: joined at depth 0 and 1
	))
	mustContainError(t, Verify(p), "inconsistent stack depth")
}

func TestUnresolvedInvoke(t *testing.T) {
	p := classWith(method(
		ir.Instr{Op: ir.OpInvokeStatic, Owner: "T", Member: "nope", NArgs: 0},
		ir.Instr{Op: ir.OpReturn},
	))
	mustContainError(t, Verify(p), "unresolved method")
}

func TestValueReturnInVoidMethod(t *testing.T) {
	p := classWith(method(
		ir.Instr{Op: ir.OpConstInt, A: 1},
		ir.Instr{Op: ir.OpReturnValue},
	))
	mustContainError(t, Verify(p), "value return in void method")
}

func TestNewAbstract(t *testing.T) {
	p := baseProgram()
	p.MustAdd(&ir.Class{Name: "Abs", Super: ir.ObjectClass, Abstract: true})
	p.MustAdd(&ir.Class{
		Name: "T", Super: ir.ObjectClass,
		Methods: []*ir.Method{method(
			ir.Instr{Op: ir.OpNew, Owner: "Abs"},
			ir.Instr{Op: ir.OpPop},
			ir.Instr{Op: ir.OpReturn},
		)},
	})
	mustContainError(t, Verify(p), "non-instantiable")
}

func TestBadHandlerRange(t *testing.T) {
	m := method(ir.Instr{Op: ir.OpReturn})
	m.Handlers = []ir.TryHandler{{Start: 5, End: 2, Target: 0}}
	p := classWith(m)
	mustContainError(t, Verify(p), "handler range")
}

// TestTransformedDistributedProgramsVerify runs the verifier over the
// transformer output for every semantic-equivalence test program shape.
func TestTransformedDistributedProgramsVerify(t *testing.T) {
	srcs := []string{
		`class C { int s; C(int s) { this.s = s; } int bump() { s = s + 1; return s; } }
		 class Main { static void main() { C c = new C(1); sys.System.println("" + c.bump()); } }`,
		`class K { static int n = 3; static int get() { return n; } }
		 class Main { static void main() { sys.System.println("" + K.get()); } }`,
		`class P { int v; P(int v) { this.v = v; } }
		 class Q extends P { Q(int v) { super(v); } int twice() { return v * 2; } }
		 class Main { static void main() { Q q = new Q(4); sys.System.println("" + q.twice()); } }`,
	}
	for i, src := range srcs {
		p := compile(t, src)
		res, err := transform.Transform(p, transform.Options{})
		if err != nil {
			t.Fatalf("case %d transform: %v", i, err)
		}
		if errs := Verify(res.Program); len(errs) > 0 {
			for _, e := range errs {
				t.Errorf("case %d: %v", i, e)
			}
		}
	}
}
