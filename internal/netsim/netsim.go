// Package netsim injects simulated network conditions — latency, jitter,
// bandwidth limits and failures — into net.Conn traffic.  It stands in
// for the paper's LAN testbed: experiments run over real sockets on one
// machine while netsim supplies the propagation characteristics, so the
// protocol comparisons measure shape rather than this machine's loopback.
package netsim

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes simulated link conditions.  The zero value is a
// perfect link.
//
// Delay model: bandwidth is serialisation delay — the sender occupies
// the link while the bits go out, so Write blocks for it.  Latency and
// jitter are propagation delay — bits already in flight don't stop later
// sends — so Write returns immediately and the payload is delivered to
// the peer after the delay by a per-connection delivery goroutine,
// preserving write order.  A pipelined protocol (the multiplexed RRP
// transport) can therefore keep many frames in flight across a simulated
// link, exactly as it could on a real one.
type Profile struct {
	// Latency is the one-way propagation delay applied to each write.
	Latency time.Duration
	// Jitter adds a deterministic pseudo-random extra delay in
	// [0, Jitter) per write.
	Jitter time.Duration
	// BandwidthBps, when positive, adds len(p)*8/BandwidthBps of
	// serialisation delay per write.
	BandwidthBps int64
	// FailAfterWrites, when positive, makes every write after the Nth
	// fail with a connection error — the §4 network-failure caveat.
	FailAfterWrites int64
	// Seed drives jitter; a fixed seed keeps runs reproducible.
	Seed uint64
	// Faults, when non-nil, injects seeded per-link chaos — frame
	// duplication, silent drops and mid-flight connection kills — the
	// adversary the E12 exactly-once experiment runs against.  A pointer
	// keeps Profile comparable (the zero-Profile fast paths).
	Faults *Faults
}

// Faults is a seeded per-link fault schedule.  Each wrapped connection
// derives its own deterministic pseudo-random stream from Seed and a
// per-process connection ordinal, and consults it once per write:
//
//   - with probability KillPerMille/1000 the connection dies before the
//     frame goes out (the frame is lost, the writer sees the error
//     immediately, readers on both sides unblock with a closed
//     connection) — a mid-flight connection kill;
//   - else with probability DropPerMille/1000 the frame is silently
//     swallowed (the writer is told it was sent) and the connection is
//     torn down shortly after — loss followed by the compressed
//     equivalent of a retransmission-timeout reset, since a stream
//     transport cannot lose one frame and keep the framing;
//   - else with probability DupPerMille/1000 the frame is delivered
//     twice, back to back — duplication at the delivery layer, which is
//     exactly what a transport-level retry after a lost response looks
//     like to the application.
//
// Writes here are frames: the transports write one complete frame per
// Write call (net.Buffers falls back to per-buffer writes on wrapped
// conns), so duplication and loss are frame-granular and framing stays
// valid.
type Faults struct {
	// Seed drives the fault schedule; runs with the same seed and
	// connection order inject the same faults.
	Seed uint64
	// DupPerMille is the per-write probability (0-1000) of duplicating
	// the frame.
	DupPerMille int
	// DropPerMille is the per-write probability (0-1000) of silently
	// losing the frame and tearing the link down asynchronously.
	DropPerMille int
	// KillPerMille is the per-write probability (0-1000) of killing the
	// connection before the frame is sent.
	KillPerMille int
	// FirstSafeWrites exempts each connection's first N writes, so a
	// link can always complete a handshake-like prefix before chaos
	// starts (and low-traffic control connections mostly escape).
	FirstSafeWrites int64
}

// connSeq hands each faulty connection a distinct ordinal, decorrelating
// the per-connection fault streams under one seed.
var connSeq atomic.Uint64

// Common profiles used by the experiments.
var (
	// LAN approximates the paper's local-area deployment target.
	LAN = Profile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9}
	// Campus is a multi-switch network.
	Campus = Profile{Latency: 500 * time.Microsecond, Jitter: 100 * time.Microsecond, BandwidthBps: 1e8}
	// WAN is a wide-area link.
	WAN = Profile{Latency: 20 * time.Millisecond, Jitter: 2 * time.Millisecond, BandwidthBps: 1e7}
)

// Conn wraps c with the profile's behaviour.
func (p Profile) Conn(c net.Conn) net.Conn {
	if p == (Profile{}) {
		return c
	}
	w := &conn{Conn: c, p: p, rng: p.Seed | 1}
	if p.Faults != nil {
		// Each connection gets its own deterministic fault stream: the
		// schedule seed folded with a process-wide connection ordinal.
		w.frng = splitmix(p.Faults.Seed^(connSeq.Add(1)*0x9e3779b97f4a7c15)) | 1
	}
	return w
}

// Listener wraps l so every accepted connection carries the profile.
func (p Profile) Listener(l net.Listener) net.Listener {
	if p == (Profile{}) {
		return l
	}
	return &listener{Listener: l, p: p}
}

// Dialer wraps a dial function so produced connections carry the profile.
func (p Profile) Dialer(dial func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	if p == (Profile{}) {
		return dial
	}
	return func(network, addr string) (net.Conn, error) {
		c, err := dial(network, addr)
		if err != nil {
			return nil, err
		}
		return p.Conn(c), nil
	}
}

type listener struct {
	net.Listener
	p Profile
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.Conn(c), nil
}

type conn struct {
	net.Conn
	p      Profile
	writes atomic.Int64
	killed atomic.Bool // fault-injected death; later writes fail fast

	mu   sync.Mutex
	rng  uint64
	frng uint64 // fault stream, separate so faults don't perturb jitter

	// Delivery queue for propagation delay (latency/jitter): writes are
	// timestamped and handed to a single goroutine that releases them to
	// the underlying connection in order once their delay elapses.
	dmu     sync.Mutex
	dcond   *sync.Cond
	queue   []delivery
	last    time.Time // latest scheduled delivery, keeps FIFO order
	started bool
	dclosed bool
	derr    error // first background delivery error
}

type delivery struct {
	data []byte
	at   time.Time
}

// FailedError reports an injected connection failure.
type FailedError struct{ Writes int64 }

func (e *FailedError) Error() string {
	return fmt.Sprintf("netsim: injected failure after %d writes", e.Writes)
}

func (c *conn) Write(p []byte) (int, error) {
	n := c.writes.Add(1)
	if c.killed.Load() {
		return 0, &FailedError{Writes: n - 1}
	}
	if c.p.FailAfterWrites > 0 && n > c.p.FailAfterWrites {
		return 0, &FailedError{Writes: n - 1}
	}
	dup := false
	if f := c.p.Faults; f != nil && n > f.FirstSafeWrites {
		c.mu.Lock()
		c.frng = splitmix(c.frng)
		roll := c.frng % 1000
		c.mu.Unlock()
		switch {
		case roll < uint64(f.KillPerMille):
			// Mid-flight kill: this frame is lost and the connection is
			// dead; the writer learns immediately, readers on both ends
			// unblock on the close.
			c.kill()
			return 0, &FailedError{Writes: n - 1}
		case roll < uint64(f.KillPerMille+f.DropPerMille):
			// Silent loss: the writer is told the frame was sent.  A
			// stream cannot skip one frame and keep its framing, so the
			// link is torn down shortly after — the compressed equivalent
			// of the retransmission timeout that follows real loss.
			go func() {
				time.Sleep(c.p.Latency + time.Millisecond)
				c.kill()
			}()
			return len(p), nil
		case roll < uint64(f.KillPerMille+f.DropPerMille+f.DupPerMille):
			dup = true
		}
	}
	// Serialisation delay: the sender occupies the link.
	if c.p.BandwidthBps > 0 {
		time.Sleep(time.Duration(int64(len(p)) * 8 * int64(time.Second) / c.p.BandwidthBps))
	}
	// Propagation delay: the payload travels while the sender moves on.
	if c.p.Latency <= 0 && c.p.Jitter <= 0 {
		if dup {
			if _, err := c.Conn.Write(p); err != nil {
				return 0, err
			}
		}
		return c.Conn.Write(p)
	}
	d := c.p.Latency
	if c.p.Jitter > 0 {
		c.mu.Lock()
		c.rng = splitmix(c.rng)
		j := time.Duration(c.rng % uint64(c.p.Jitter))
		c.mu.Unlock()
		d += j
	}
	c.dmu.Lock()
	if c.derr != nil {
		err := c.derr
		c.dmu.Unlock()
		return 0, err
	}
	if c.dclosed {
		c.dmu.Unlock()
		return 0, net.ErrClosed
	}
	if !c.started {
		c.started = true
		c.dcond = sync.NewCond(&c.dmu)
		go c.deliverLoop()
	}
	at := time.Now().Add(d)
	if at.Before(c.last) {
		at = c.last // jitter must not reorder frames
	}
	c.last = at
	// Copy: callers recycle their buffers as soon as Write returns.
	data := append([]byte(nil), p...)
	c.queue = append(c.queue, delivery{data: data, at: at})
	if dup {
		// Duplicate delivered back to back (the delivery loop never
		// mutates the payload, so the copies share one backing array).
		c.queue = append(c.queue, delivery{data: data, at: at})
	}
	c.dcond.Signal()
	c.dmu.Unlock()
	return len(p), nil
}

// kill marks the connection dead to future writes and tears it down,
// unblocking readers on both ends.
func (c *conn) kill() {
	if c.killed.Swap(true) {
		return
	}
	_ = c.Close()
}

func (c *conn) deliverLoop() {
	for {
		c.dmu.Lock()
		for len(c.queue) == 0 && !c.dclosed {
			c.dcond.Wait()
		}
		if c.dclosed {
			c.dmu.Unlock()
			return
		}
		item := c.queue[0]
		c.queue = c.queue[1:]
		c.dmu.Unlock()
		if wait := time.Until(item.at); wait > 0 {
			time.Sleep(wait)
		}
		if _, err := c.Conn.Write(item.data); err != nil {
			c.dmu.Lock()
			if c.derr == nil {
				c.derr = err
			}
			c.dmu.Unlock()
			return
		}
	}
}

// Close tears the link down immediately: frames still "in flight" in the
// delivery queue are lost, as on a real abruptly-closed connection.
func (c *conn) Close() error {
	c.dmu.Lock()
	c.dclosed = true
	if c.started {
		c.dcond.Signal()
	}
	c.dmu.Unlock()
	return c.Conn.Close()
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
