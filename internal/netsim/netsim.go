// Package netsim injects simulated network conditions — latency, jitter,
// bandwidth limits and failures — into net.Conn traffic.  It stands in
// for the paper's LAN testbed: experiments run over real sockets on one
// machine while netsim supplies the propagation characteristics, so the
// protocol comparisons measure shape rather than this machine's loopback.
package netsim

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes simulated link conditions.  The zero value is a
// perfect link.
type Profile struct {
	// Latency is the one-way propagation delay applied to each write.
	Latency time.Duration
	// Jitter adds a deterministic pseudo-random extra delay in
	// [0, Jitter) per write.
	Jitter time.Duration
	// BandwidthBps, when positive, adds len(p)*8/BandwidthBps of
	// serialisation delay per write.
	BandwidthBps int64
	// FailAfterWrites, when positive, makes every write after the Nth
	// fail with a connection error — the §4 network-failure caveat.
	FailAfterWrites int64
	// Seed drives jitter; a fixed seed keeps runs reproducible.
	Seed uint64
}

// Common profiles used by the experiments.
var (
	// LAN approximates the paper's local-area deployment target.
	LAN = Profile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9}
	// Campus is a multi-switch network.
	Campus = Profile{Latency: 500 * time.Microsecond, Jitter: 100 * time.Microsecond, BandwidthBps: 1e8}
	// WAN is a wide-area link.
	WAN = Profile{Latency: 20 * time.Millisecond, Jitter: 2 * time.Millisecond, BandwidthBps: 1e7}
)

// Conn wraps c with the profile's behaviour.
func (p Profile) Conn(c net.Conn) net.Conn {
	if p == (Profile{}) {
		return c
	}
	return &conn{Conn: c, p: p, rng: p.Seed | 1}
}

// Listener wraps l so every accepted connection carries the profile.
func (p Profile) Listener(l net.Listener) net.Listener {
	if p == (Profile{}) {
		return l
	}
	return &listener{Listener: l, p: p}
}

// Dialer wraps a dial function so produced connections carry the profile.
func (p Profile) Dialer(dial func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	if p == (Profile{}) {
		return dial
	}
	return func(network, addr string) (net.Conn, error) {
		c, err := dial(network, addr)
		if err != nil {
			return nil, err
		}
		return p.Conn(c), nil
	}
}

type listener struct {
	net.Listener
	p Profile
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.Conn(c), nil
}

type conn struct {
	net.Conn
	p      Profile
	writes atomic.Int64

	mu  sync.Mutex
	rng uint64
}

// FailedError reports an injected connection failure.
type FailedError struct{ Writes int64 }

func (e *FailedError) Error() string {
	return fmt.Sprintf("netsim: injected failure after %d writes", e.Writes)
}

func (c *conn) Write(p []byte) (int, error) {
	n := c.writes.Add(1)
	if c.p.FailAfterWrites > 0 && n > c.p.FailAfterWrites {
		return 0, &FailedError{Writes: n - 1}
	}
	d := c.p.Latency
	if c.p.Jitter > 0 {
		c.mu.Lock()
		c.rng = splitmix(c.rng)
		j := time.Duration(c.rng % uint64(c.p.Jitter))
		c.mu.Unlock()
		d += j
	}
	if c.p.BandwidthBps > 0 {
		d += time.Duration(int64(len(p)) * 8 * int64(time.Second) / c.p.BandwidthBps)
	}
	if d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
