package netsim

import (
	"errors"
	"net"
	"testing"
	"time"
)

func pipePair(t *testing.T, p Profile) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return p.Conn(a), b
}

func TestZeroProfilePassThrough(t *testing.T) {
	var p Profile
	a, _ := net.Pipe()
	if p.Conn(a) != a {
		t.Fatal("zero profile should not wrap")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	if p.Listener(l) != l {
		t.Fatal("zero profile should not wrap listener")
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	p := Profile{Latency: 5 * time.Millisecond}
	a, b := pipePair(t, p)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := a.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := time.Since(start); got < 15*time.Millisecond {
		t.Fatalf("3 writes took %v; latency not applied", got)
	}
}

func TestBandwidthDelayScalesWithSize(t *testing.T) {
	// 1 MB/s: a 10 KB write should take ≥ ~80ms of serialisation delay.
	p := Profile{BandwidthBps: 1_000_000}
	a, b := pipePair(t, p)
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	defer close(done)
	payload := make([]byte, 10_000)
	start := time.Now()
	if _, err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 70*time.Millisecond {
		t.Fatalf("10KB at 1MB/s took only %v", got)
	}
}

func TestFailureInjection(t *testing.T) {
	p := Profile{FailAfterWrites: 2}
	a, b := pipePair(t, p)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := a.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	_, err := a.Write([]byte("boom"))
	var fe *FailedError
	if !errors.As(err, &fe) || fe.Writes != 2 {
		t.Fatalf("want FailedError after 2 writes, got %v", err)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) time.Duration {
		p := Profile{Jitter: 2 * time.Millisecond, Seed: seed}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		wrapped := p.Conn(a)
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		start := time.Now()
		for i := 0; i < 5; i++ {
			_, _ = wrapped.Write([]byte("j"))
		}
		return time.Since(start)
	}
	// Same seed twice: similar totals (within scheduling noise); the
	// point is it runs and produces bounded delay.
	d := mk(42)
	if d > 50*time.Millisecond {
		t.Fatalf("jitter too large: %v", d)
	}
}

func TestListenerWraps(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listener(inner)
	defer l.Close()
	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Write([]byte("hi"))
		buf := make([]byte, 2)
		_, _ = c.Read(buf)
	}()
	conn, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := conn.Write([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("accepted conn not wrapped")
	}
}

func TestDialerWraps(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		_, _ = c.Read(buf)
	}()
	dial := p.Dialer(func(network, addr string) (net.Conn, error) {
		return net.Dial(network, addr)
	})
	c, err := dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("dialled conn not wrapped")
	}
}
