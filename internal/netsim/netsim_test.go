package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func pipePair(t *testing.T, p Profile) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return p.Conn(a), b
}

func TestZeroProfilePassThrough(t *testing.T) {
	var p Profile
	a, _ := net.Pipe()
	if p.Conn(a) != a {
		t.Fatal("zero profile should not wrap")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	if p.Listener(l) != l {
		t.Fatal("zero profile should not wrap listener")
	}
}

func TestLatencyDelaysDeliveryNotSender(t *testing.T) {
	// Generous latency so the sender/delivery bounds tolerate CI
	// scheduling pauses: the assertions only need "well under one
	// latency" and "well under serialised (3x) delivery".
	const lat = 50 * time.Millisecond
	p := Profile{Latency: lat}
	a, b := pipePair(t, p)
	arrived := make(chan time.Time, 1)
	go func() {
		buf := make([]byte, 16)
		got := 0
		for got < 3 {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			got += n
		}
		arrived <- time.Now()
	}()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := a.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Propagation delay must not block the sender: three back-to-back
	// writes return well before even one latency elapses.
	if got := time.Since(start); got >= lat {
		t.Fatalf("3 writes blocked the sender for %v; propagation should be async", got)
	}
	all := <-arrived
	if got := all.Sub(start); got < lat {
		t.Fatalf("payload arrived after %v; latency not applied", got)
	}
	// Pipelining: frames travel concurrently, so all three arrive about
	// one latency after sending, not one latency each.
	if got := all.Sub(start); got >= 3*lat {
		t.Fatalf("3 pipelined writes took %v to deliver; latency serialised", got)
	}
}

func TestBandwidthDelayScalesWithSize(t *testing.T) {
	// 1 MB/s: a 10 KB write should take ≥ ~80ms of serialisation delay.
	p := Profile{BandwidthBps: 1_000_000}
	a, b := pipePair(t, p)
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	defer close(done)
	payload := make([]byte, 10_000)
	start := time.Now()
	if _, err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 70*time.Millisecond {
		t.Fatalf("10KB at 1MB/s took only %v", got)
	}
}

func TestFailureInjection(t *testing.T) {
	p := Profile{FailAfterWrites: 2}
	a, b := pipePair(t, p)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := a.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	_, err := a.Write([]byte("boom"))
	var fe *FailedError
	if !errors.As(err, &fe) || fe.Writes != 2 {
		t.Fatalf("want FailedError after 2 writes, got %v", err)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) time.Duration {
		p := Profile{Jitter: 2 * time.Millisecond, Seed: seed}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		wrapped := p.Conn(a)
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		start := time.Now()
		for i := 0; i < 5; i++ {
			_, _ = wrapped.Write([]byte("j"))
		}
		return time.Since(start)
	}
	// Same seed twice: similar totals (within scheduling noise); the
	// point is it runs and produces bounded delay.
	d := mk(42)
	if d > 50*time.Millisecond {
		t.Fatalf("jitter too large: %v", d)
	}
}

func TestListenerWraps(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listener(inner)
	defer l.Close()
	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Write([]byte("hi"))
		buf := make([]byte, 2)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		_, _ = c.Write([]byte("ok")) // ack, unwrapped side: instant
	}()
	conn, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// The wrapped write is delayed in flight: the peer's ack cannot come
	// back before one latency has passed.
	start := time.Now()
	if _, err := conn.Write([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("accepted conn not wrapped")
	}
}

func TestDialerWraps(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		_, _ = c.Write([]byte("pong")) // ack, unwrapped side: instant
	}()
	dial := p.Dialer(func(network, addr string) (net.Conn, error) {
		return net.Dial(network, addr)
	})
	c, err := dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("dialled conn not wrapped")
	}
}

// faultProfile builds a profile whose only behaviour is the fault
// schedule (no latency/bandwidth shaping), seeded deterministically.
func faultProfile(f Faults) Profile {
	return Profile{Seed: 1, Faults: &f}
}

func TestFaultDuplicationDeliversFrameTwice(t *testing.T) {
	// 100% duplication: every written frame arrives twice, back to back.
	a, b := pipePair(t, faultProfile(Faults{Seed: 7, DupPerMille: 1000}))
	go a.Write([]byte("xyz"))
	buf := make([]byte, 6)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "xyzxyz" {
		t.Fatalf("got %q want the frame twice", buf)
	}
}

func TestFaultKillFailsWriteAndUnblocksReader(t *testing.T) {
	a, b := pipePair(t, faultProfile(Faults{Seed: 7, KillPerMille: 1000}))
	readErr := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 4))
		readErr <- err
	}()
	_, err := a.Write([]byte("doomed"))
	var fe *FailedError
	if !errors.As(err, &fe) {
		t.Fatalf("want injected FailedError, got %v", err)
	}
	// The frame was lost and the link is dead: the peer's read unblocks
	// with an error instead of hanging on a frame that never comes.
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("peer read returned data from a killed link")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read still blocked after kill")
	}
	// Subsequent writes fail fast.
	if _, err := a.Write([]byte("after")); err == nil {
		t.Fatal("write on killed connection succeeded")
	}
}

func TestFaultDropSwallowsFrameThenTearsDown(t *testing.T) {
	a, b := pipePair(t, faultProfile(Faults{Seed: 7, DropPerMille: 1000}))
	if _, err := a.Write([]byte("lost")); err != nil {
		t.Fatalf("drop must report success to the writer, got %v", err)
	}
	// The frame never arrives; instead the link is torn down shortly
	// after (a stream cannot skip one frame and keep its framing).
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := b.Read(make([]byte, 8))
	if err == nil || n > 0 {
		t.Fatalf("dropped frame delivered: n=%d err=%v", n, err)
	}
}

func TestFaultFirstSafeWritesExemption(t *testing.T) {
	a, b := pipePair(t, faultProfile(Faults{Seed: 7, KillPerMille: 1000, FirstSafeWrites: 3}))
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := a.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d inside the safe prefix failed: %v", i, err)
		}
	}
	if _, err := a.Write([]byte("boom")); err == nil {
		t.Fatal("write past the safe prefix survived a 100% kill schedule")
	}
}

// TestFaultScheduleIsDeterministic replays the same seed over the same
// per-connection write sequence and expects identical outcomes — the
// property the E12 chaos experiment's fixed seed matrix relies on.
func TestFaultScheduleIsDeterministic(t *testing.T) {
	outcomes := func() []bool {
		// Reset decorrelation is impossible (connSeq is process-wide),
		// so determinism is asserted per connection stream: one conn,
		// fixed seed folded with its ordinal, many writes.
		f := Faults{Seed: 99, KillPerMille: 0, DropPerMille: 0, DupPerMille: 500}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := &conn{Conn: a, p: Profile{Seed: 1, Faults: &f}}
		w.frng = splitmix(f.Seed) | 1
		go io.Copy(io.Discard, b)
		var out []bool
		buf := []byte("f")
		for i := 0; i < 64; i++ {
			before := w.frng
			w.Write(buf)
			// A changed stream with a dup decision shows up as the next
			// state's low bit pattern; record the roll outcome directly.
			out = append(out, splitmix(before)%1000 < 500)
		}
		return out
	}
	first, second := outcomes(), outcomes()
	dups := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("fault schedule diverged at write %d", i)
		}
		if first[i] {
			dups++
		}
	}
	if dups == 0 || dups == len(first) {
		t.Fatalf("degenerate schedule: %d/%d dups", dups, len(first))
	}
}
