package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func pipePair(t *testing.T, p Profile) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return p.Conn(a), b
}

func TestZeroProfilePassThrough(t *testing.T) {
	var p Profile
	a, _ := net.Pipe()
	if p.Conn(a) != a {
		t.Fatal("zero profile should not wrap")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	if p.Listener(l) != l {
		t.Fatal("zero profile should not wrap listener")
	}
}

func TestLatencyDelaysDeliveryNotSender(t *testing.T) {
	// Generous latency so the sender/delivery bounds tolerate CI
	// scheduling pauses: the assertions only need "well under one
	// latency" and "well under serialised (3x) delivery".
	const lat = 50 * time.Millisecond
	p := Profile{Latency: lat}
	a, b := pipePair(t, p)
	arrived := make(chan time.Time, 1)
	go func() {
		buf := make([]byte, 16)
		got := 0
		for got < 3 {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			got += n
		}
		arrived <- time.Now()
	}()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := a.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Propagation delay must not block the sender: three back-to-back
	// writes return well before even one latency elapses.
	if got := time.Since(start); got >= lat {
		t.Fatalf("3 writes blocked the sender for %v; propagation should be async", got)
	}
	all := <-arrived
	if got := all.Sub(start); got < lat {
		t.Fatalf("payload arrived after %v; latency not applied", got)
	}
	// Pipelining: frames travel concurrently, so all three arrive about
	// one latency after sending, not one latency each.
	if got := all.Sub(start); got >= 3*lat {
		t.Fatalf("3 pipelined writes took %v to deliver; latency serialised", got)
	}
}

func TestBandwidthDelayScalesWithSize(t *testing.T) {
	// 1 MB/s: a 10 KB write should take ≥ ~80ms of serialisation delay.
	p := Profile{BandwidthBps: 1_000_000}
	a, b := pipePair(t, p)
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	defer close(done)
	payload := make([]byte, 10_000)
	start := time.Now()
	if _, err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 70*time.Millisecond {
		t.Fatalf("10KB at 1MB/s took only %v", got)
	}
}

func TestFailureInjection(t *testing.T) {
	p := Profile{FailAfterWrites: 2}
	a, b := pipePair(t, p)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := a.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	_, err := a.Write([]byte("boom"))
	var fe *FailedError
	if !errors.As(err, &fe) || fe.Writes != 2 {
		t.Fatalf("want FailedError after 2 writes, got %v", err)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) time.Duration {
		p := Profile{Jitter: 2 * time.Millisecond, Seed: seed}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		wrapped := p.Conn(a)
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		start := time.Now()
		for i := 0; i < 5; i++ {
			_, _ = wrapped.Write([]byte("j"))
		}
		return time.Since(start)
	}
	// Same seed twice: similar totals (within scheduling noise); the
	// point is it runs and produces bounded delay.
	d := mk(42)
	if d > 50*time.Millisecond {
		t.Fatalf("jitter too large: %v", d)
	}
}

func TestListenerWraps(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listener(inner)
	defer l.Close()
	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Write([]byte("hi"))
		buf := make([]byte, 2)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		_, _ = c.Write([]byte("ok")) // ack, unwrapped side: instant
	}()
	conn, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// The wrapped write is delayed in flight: the peer's ack cannot come
	// back before one latency has passed.
	start := time.Now()
	if _, err := conn.Write([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("accepted conn not wrapped")
	}
}

func TestDialerWraps(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		_, _ = c.Write([]byte("pong")) // ack, unwrapped side: instant
	}()
	dial := p.Dialer(func(network, addr string) (net.Conn, error) {
		return net.Dial(network, addr)
	})
	c, err := dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("dialled conn not wrapped")
	}
}
