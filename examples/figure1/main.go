// Figure 1 end-to-end: objects of classes A and B share an instance of
// class C.  The application is redistributed so that the shared C lives
// on a second node behind a proxy Cp, without touching the program —
// only policy changes.  Finally the live instance is pulled back by
// migration, demonstrating dynamic redistribution (§4).
package main

import (
	"fmt"
	"os"

	"rafda"
)

const source = `
class C {
    int state;
    C(int s) { this.state = s; }
    int bump() { state = state + 1; return state; }
}
class A {
    C c;
    A(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class B {
    C c;
    B(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class World {
    static C shared = new C(100);
    static A a = new A(shared);
    static B b = new B(shared);
    static string round() {
        return "a->" + a.use() + "  b->" + b.use();
    }
}
class Main { static void main() {} }`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := rafda.CompileString(source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform()
	if err != nil {
		return err
	}

	left, err := tr.NewNode(rafda.NodeConfig{Name: "left", Output: os.Stdout})
	if err != nil {
		return err
	}
	defer left.Close()
	right, err := tr.NewNode(rafda.NodeConfig{Name: "right", Output: os.Stdout})
	if err != nil {
		return err
	}
	defer right.Close()

	rightEP, err := right.Serve("rrp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if _, err := left.Serve("rrp", "127.0.0.1:0"); err != nil {
		return err
	}

	// Scenario 1: everything collocated on the left node.
	fmt.Println("== collocated (A, B, C on node left) ==")
	for i := 0; i < 2; i++ {
		out, err := left.Call("World", "round")
		if err != nil {
			return err
		}
		fmt.Println("  " + out.(string))
	}

	// Scenario 2 (the figure): migrate the live shared C to the right
	// node.  The local instance becomes the proxy Cp in place; A's and
	// B's references now cross the network transparently.
	href, err := left.ReadStatic("World", "shared")
	if err != nil {
		return err
	}
	shared := href.(*rafda.Ref)
	if err := left.Migrate(shared, rightEP); err != nil {
		return err
	}
	fmt.Printf("\n== redistributed: C migrated to %s ==\n", rightEP)
	fmt.Printf("  local reference now points at %s\n", shared.ClassName())
	for i := 0; i < 2; i++ {
		out, err := left.Call("World", "round")
		if err != nil {
			return err
		}
		fmt.Println("  " + out.(string))
	}

	ls, rs := left.Stats(), right.Stats()
	fmt.Printf("\nleft : %d remote calls out, %d migrations out\n", ls.RemoteCallsOut, ls.MigrationsOut)
	fmt.Printf("right: %d remote calls served, %d migrations in\n", rs.RemoteCallsIn, rs.MigrationsIn)

	// Scenario 3: future instances of C also placed remotely by policy.
	if err := left.PlaceClass("C", rightEP); err != nil {
		return err
	}
	fmt.Println("\npolicy updated: new instances of C will be created on node right")
	return nil
}
