// Bank: a domain example of flexible distribution.  The application is
// written with no distribution in mind: tellers process transfers over
// accounts and an audit log records every movement.  Deployment then
// decides — per class, per protocol — where things live: accounts on a
// ledger node over RRP, the audit log on a compliance node over SOAP,
// tellers local.  The program text never changes.
package main

import (
	"fmt"
	"os"

	"rafda"
)

const source = `
class Account {
    string owner;
    int balance;
    Account(string owner, int opening) {
        this.owner = owner;
        this.balance = opening;
    }
    void deposit(int amount) { balance = balance + amount; }
    void withdraw(int amount) {
        if (amount > balance) {
            throw new sys.RuntimeException("insufficient funds for " + owner);
        }
        balance = balance - amount;
    }
}
class Audit {
    string log;
    int entries;
    Audit() { this.log = ""; this.entries = 0; }
    void record(string what) {
        log = log + what + ";";
        entries = entries + 1;
    }
    int count() { return entries; }
}
class Teller {
    Audit audit;
    Teller(Audit a) { this.audit = a; }
    bool transfer(Account from, Account to, int amount) {
        try {
            from.withdraw(amount);
        } catch (sys.RuntimeException e) {
            audit.record("DENIED " + e.getMessage());
            return false;
        }
        to.deposit(amount);
        audit.record("MOVED " + amount);
        return true;
    }
}
class Bank {
    static Audit audit = new Audit();
    static Account alice = new Account("alice", 900);
    static Account bob = new Account("bob", 50);
    static Teller teller = new Teller(audit);
    static string day() {
        teller.transfer(alice, bob, 300);
        teller.transfer(bob, alice, 1000);
        teller.transfer(alice, bob, 250);
        return "alice=" + alice.balance + " bob=" + bob.balance + " audited=" + audit.count();
    }
}
class Main { static void main() {} }`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := rafda.CompileString(source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform()
	if err != nil {
		return err
	}

	branch, err := tr.NewNode(rafda.NodeConfig{Name: "branch"})
	if err != nil {
		return err
	}
	defer branch.Close()
	ledger, err := tr.NewNode(rafda.NodeConfig{Name: "ledger"})
	if err != nil {
		return err
	}
	defer ledger.Close()
	compliance, err := tr.NewNode(rafda.NodeConfig{Name: "compliance"})
	if err != nil {
		return err
	}
	defer compliance.Close()

	ledgerEP, err := ledger.Serve("rrp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	complianceEP, err := compliance.Serve("soap", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if _, err := branch.Serve("rrp", "127.0.0.1:0"); err != nil {
		return err
	}

	// Deployment decisions, expressed purely as policy:
	//   accounts  -> ledger node, binary RRP proxies
	//   audit log -> compliance node, SOAP proxies
	//   tellers   -> local to the branch
	if err := branch.PlaceClass("Account", ledgerEP); err != nil {
		return err
	}
	if err := branch.PlaceClass("Audit", complianceEP); err != nil {
		return err
	}

	fmt.Println("== a banking day across three nodes ==")
	out, err := branch.Call("Bank", "day")
	if err != nil {
		return err
	}
	fmt.Println("  " + out.(string))

	// The audit trail genuinely lives on the compliance node: the
	// branch's reference to it is a SOAP proxy.
	auditRef, err := branch.ReadStatic("Bank", "audit")
	if err != nil {
		return err
	}
	fmt.Printf("  branch's audit reference is a %s\n", auditRef.(*rafda.Ref).ClassName())

	n, err := branch.Call("Bank", "day") // another banking day
	if err != nil {
		return err
	}
	fmt.Println("  " + n.(string))

	bs, ls, cs := branch.Stats(), ledger.Stats(), compliance.Stats()
	fmt.Printf("\nbranch    : %4d remote calls out\n", bs.RemoteCallsOut)
	fmt.Printf("ledger    : %4d calls served, %d objects created (accounts)\n", ls.RemoteCallsIn, ls.Creates)
	fmt.Printf("compliance: %4d calls served, %d objects created (audit log)\n", cs.RemoteCallsIn, cs.Creates)
	return nil
}
