// Adaptive distribution (§4 future work): "the distributed program can
// adapt to its environment by dynamically altering its distribution
// boundaries."  A cache class starts on a remote node; the application
// watches observed call latency and, when the (simulated) network
// degrades, migrates the hot object home and re-points creation policy —
// all while the program keeps running, untouched.
package main

import (
	"fmt"
	"os"
	"time"

	"rafda"
)

const source = `
class Cache {
    int hits;
    int entries;
    Cache(int entries) { this.entries = entries; this.hits = 0; }
    int lookup(int key) {
        hits = hits + 1;
        return key % entries;
    }
}
class App {
    static Cache cache = new Cache(64);
    static int query(int k) { return cache.lookup(k); }
    static int hits() { return cache.hits; }
}
class Main { static void main() {} }`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := rafda.CompileString(source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform()
	if err != nil {
		return err
	}

	app, err := tr.NewNode(rafda.NodeConfig{Name: "app"})
	if err != nil {
		return err
	}
	defer app.Close()
	// The far node sits behind a degraded (WAN-like) simulated link.
	far, err := tr.NewNode(rafda.NodeConfig{
		Name:    "far",
		Network: rafda.NetProfile{Latency: 3 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer far.Close()

	farEP, err := far.Serve("rrp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if _, err := app.Serve("rrp", "127.0.0.1:0"); err != nil {
		return err
	}

	// Deploy the cache remotely to begin with.
	if err := app.PlaceClass("Cache", farEP); err != nil {
		return err
	}

	const slaPerCall = 1 * time.Millisecond
	measure := func(n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := app.Call("App", "query", i); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(n), nil
	}

	fmt.Println("== phase 1: cache deployed on the far node ==")
	perCall, err := measure(20)
	if err != nil {
		return err
	}
	fmt.Printf("  observed %v per call (SLA %v)\n", perCall.Round(time.Microsecond), slaPerCall)

	if perCall > slaPerCall {
		fmt.Println("\n== adapting: SLA violated, pulling the cache home ==")
		cref, err := app.ReadStatic("App", "cache")
		if err != nil {
			return err
		}
		ref := cref.(*rafda.Ref)
		migStart := time.Now()
		if err := app.Migrate(ref, app.Endpoint("rrp")); err != nil {
			return err
		}
		fmt.Printf("  migrated live cache (state intact) in %v\n", time.Since(migStart).Round(time.Microsecond))
		if err := app.PlaceClass("Cache", "local"); err != nil {
			return err
		}
	}

	fmt.Println("\n== phase 2: after adaptation ==")
	perCall, err = measure(20)
	if err != nil {
		return err
	}
	fmt.Printf("  observed %v per call\n", perCall.Round(time.Microsecond))

	hits, err := app.Call("App", "hits")
	if err != nil {
		return err
	}
	fmt.Printf("  cache hit counter carried across the boundary change: %d\n", hits.(int64))
	return nil
}
