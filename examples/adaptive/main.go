// Adaptive distribution (§4 future work): "the distributed program can
// adapt to its environment by dynamically altering its distribution
// boundaries."  A cache class starts on a remote node behind a degraded
// (WAN-like) link.  The node's adaptive placement engine watches the
// call-affinity telemetry, migrates the hot cache next to its caller,
// and re-points the creation policy — no manual Migrate or PlaceClass,
// while the program keeps running untouched (see docs/ADAPTIVE.md).
package main

import (
	"fmt"
	"os"
	"time"

	"rafda"
)

const source = `
class Cache {
    int hits;
    int entries;
    Cache(int entries) { this.entries = entries; this.hits = 0; }
    int lookup(int key) {
        hits = hits + 1;
        return key % entries;
    }
}
class App {
    static Cache cache = new Cache(64);
    static int query(int k) { return cache.lookup(k); }
    static int hits() { return cache.hits; }
}
class Main { static void main() {} }`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := rafda.CompileString(source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform()
	if err != nil {
		return err
	}

	app, err := tr.NewNode(rafda.NodeConfig{Name: "app"})
	if err != nil {
		return err
	}
	defer app.Close()
	// The far node sits behind a degraded (WAN-like) simulated link.
	far, err := tr.NewNode(rafda.NodeConfig{
		Name:    "far",
		Network: rafda.NetProfile{Latency: 3 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer far.Close()

	farEP, err := far.Serve("rrp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if _, err := app.Serve("rrp", "127.0.0.1:0"); err != nil {
		return err
	}

	// Close the loop: both nodes watch their own call affinity.  The far
	// node will see the cache's calls all arriving from the app node and
	// migrate it there; the app node will see its own remote traffic and
	// pull the class policy home for future caches.
	cfg := rafda.AdaptConfig{
		Window:    50 * time.Millisecond,
		Threshold: 0.6,
		MinCalls:  8,
		Confirm:   2,
		OnDecision: func(d rafda.AdaptDecision) {
			status := "held"
			if d.Executed {
				status = "executed"
			}
			target := d.GUID
			if target == "" {
				target = "class " + d.Class
			}
			fmt.Printf("  [engine] %-11s %s -> %q (%s)\n", d.Action, target, d.Endpoint, status)
		},
	}
	app.StartAdapter(cfg)
	far.StartAdapter(cfg)

	// Deploy the cache remotely to begin with — the mis-placement the
	// engine has to discover and undo.
	if err := app.PlaceClass("Cache", farEP); err != nil {
		return err
	}

	measure := func(n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := app.Call("App", "query", i); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(n), nil
	}

	fmt.Println("== phase 1: cache deployed on the far node, engine watching ==")
	perCall, err := measure(20)
	if err != nil {
		return err
	}
	fmt.Printf("  observed %v per call\n", perCall.Round(time.Microsecond))

	// Keep the workload running; the engine adapts underneath it.
	fmt.Println("\n== traffic continues; the engine redraws the boundary ==")
	deadline := time.Now().Add(10 * time.Second)
	for app.Stats().MigrationsIn == 0 && time.Now().Before(deadline) {
		if _, err := measure(10); err != nil {
			return err
		}
	}
	if app.Stats().MigrationsIn == 0 {
		return fmt.Errorf("engine never migrated the cache")
	}

	fmt.Println("\n== phase 2: after automatic adaptation ==")
	perCall, err = measure(20)
	if err != nil {
		return err
	}
	fmt.Printf("  observed %v per call\n", perCall.Round(time.Microsecond))

	hits, err := app.Call("App", "hits")
	if err != nil {
		return err
	}
	fmt.Printf("  cache hit counter carried across the boundary change: %d\n", hits.(int64))
	return nil
}
