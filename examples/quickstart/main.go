// Quickstart: compile a small program, inspect the substitutability
// analysis, transform it, and run both versions — demonstrating the
// paper's core promise that the transformed program is semantically
// equivalent while every class becomes substitutable.
package main

import (
	"fmt"
	"os"

	"rafda"
)

const source = `
class Library {
    string name;
    Book[] shelf;
    int count;
    Library(string name, int capacity) {
        this.name = name;
        this.shelf = new Book[capacity];
        this.count = 0;
    }
    void add(Book b) {
        shelf[count] = b;
        count = count + 1;
    }
    int total() {
        int pages = 0;
        for (int i = 0; i < count; i = i + 1) {
            pages = pages + shelf[i].pages;
        }
        return pages;
    }
}
class Book {
    string title;
    int pages;
    Book(string t, int p) { this.title = t; this.pages = p; }
}
class Main {
    static void main() {
        Library lib = new Library("St Andrews", 8);
        lib.add(new Book("Reflection in Practice", 320));
        lib.add(new Book("Distributed Objects", 412));
        lib.add(new Book("Middleware 2003", 198));
        sys.System.println(lib.name + " holds " + lib.count + " books, " + lib.total() + " pages");
    }
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := rafda.CompileString(source)
	if err != nil {
		return err
	}
	if errs := prog.Verify(); len(errs) > 0 {
		return fmt.Errorf("verification: %v", errs[0])
	}

	fmt.Println("== substitutability analysis (paper §2.4) ==")
	analysis := prog.Analyze()
	for _, class := range []string{"Library", "Book", "Main", "sys.Object", "sys.Exception"} {
		fmt.Printf("  %-14s %s\n", class, analysis.Why(class))
	}

	fmt.Println("\n== original program ==")
	if err := prog.Run("Main", os.Stdout); err != nil {
		return err
	}

	tr, err := prog.Transform()
	if err != nil {
		return err
	}
	fmt.Println("\n== generated classes for Library (paper §2.1–2.3) ==")
	for _, c := range tr.Program().Classes() {
		if len(c) > 7 && c[:7] == "Library" {
			fmt.Println("  " + c)
		}
	}

	fmt.Println("\n== transformed program, single address space (paper §4) ==")
	if err := tr.RunLocal("Main", os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nidentical output: the transformation preserved the program's semantics")
	return nil
}
