package rafda

import (
	"strings"
	"testing"
)

const adaptSource = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// TestAdaptiveMigrationConverges drives the whole closed loop
// deterministically (manual adapter ticks, no timers): a hot object is
// mis-placed on node B while all its calls come from node A; B's
// adapter must observe the affinity, migrate the object to A with state
// intact, the caller's proxy must retarget off the forwarding hop, and
// neither adapter may ever move the object again (no ping-pong).  A's
// adapter must additionally flip the class policy local, so future
// creations stop being mis-placed — the §4 boundary redraw with zero
// manual Migrate/PlaceClass calls.
func TestAdaptiveMigrationConverges(t *testing.T) {
	prog, err := CompileString(adaptSource)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Transform(WithProtocols("rrp"))
	if err != nil {
		t.Fatal(err)
	}
	nodeA, err := tr.NewNode(NodeConfig{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := tr.NewNode(NodeConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	epA, err := nodeA.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nodeB.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}

	cfg := AdaptConfig{Threshold: 0.6, MinCalls: 10, Confirm: 2, Budget: 2}
	adA := nodeA.NewAdapter(cfg)
	adB := nodeB.NewAdapter(cfg)

	// Mis-place the hot class, then create the hot object from A.
	if err := nodeA.PlaceClass("Counter", epB); err != nil {
		t.Fatal(err)
	}
	made, err := nodeA.Call("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)
	if !strings.Contains(ref.ClassName(), "Proxy") {
		t.Fatalf("mis-placed object should start as a proxy, is %s", ref.ClassName())
	}

	next := int64(0)
	drive := func(calls int) {
		t.Helper()
		for i := 0; i < calls; i++ {
			got, err := nodeA.CallOn(ref, "bump")
			if err != nil {
				t.Fatalf("bump: %v", err)
			}
			next++
			if got.(int64) != next {
				t.Fatalf("bump returned %v, want %d (state lost across adaptation)", got, next)
			}
		}
	}

	// Two confirmation windows of one-sided traffic.
	drive(30)
	adA.Tick()
	adB.Tick()
	drive(30)
	adA.Tick()
	adB.Tick()

	// B must have migrated the object to A — no manual Migrate call.
	var migrations int
	for _, d := range adB.Decisions() {
		if d.Action == "migrate" && d.Executed {
			migrations++
			if d.Endpoint != epA {
				t.Fatalf("migrated to %s, want %s", d.Endpoint, epA)
			}
		}
	}
	if migrations != 1 {
		t.Fatalf("executed migrations on B = %d, want 1; log: %+v", migrations, adB.Decisions())
	}
	if in := nodeA.Stats().MigrationsIn; in != 1 {
		t.Fatalf("node A migrations-in = %d, want 1", in)
	}

	// One call pays the forwarding hop and carries the redirect; after
	// that the caller's proxy must reach the object without B.
	drive(1)
	beforeB := nodeB.Stats().RemoteCallsIn
	drive(20)
	if afterB := nodeB.Stats().RemoteCallsIn; afterB != beforeB {
		t.Fatalf("calls still flow through B after redirect: %d -> %d", beforeB, afterB)
	}

	// A's adapter must have flipped the class policy local (the
	// class-pull rule), so new instances stop being mis-placed.
	var flips int
	for _, d := range adA.Decisions() {
		if d.Action == "place-class" && d.Executed {
			flips++
			if d.Class != "Counter" || d.Endpoint != "" {
				t.Fatalf("unexpected flip: %+v", d)
			}
		}
	}
	if flips != 1 {
		t.Fatalf("executed class flips on A = %d, want 1; log: %+v", flips, adA.Decisions())
	}
	made2, err := nodeA.Call("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	if cn := made2.(*Ref).ClassName(); !strings.HasSuffix(cn, "_O_Local") {
		t.Fatalf("post-flip creation is %s, want a local instance", cn)
	}

	// Converged steady state: more traffic and more windows on both
	// adapters must not move anything again.
	for w := 0; w < 4; w++ {
		drive(30)
		adA.Tick()
		adB.Tick()
	}
	for _, d := range append(adA.Decisions(), adB.Decisions()...) {
		if d.Action == "migrate" && d.Executed && d.Endpoint != epA {
			t.Fatalf("ping-pong: %+v", d)
		}
	}
	var total int
	for _, d := range append(adA.Decisions(), adB.Decisions()...) {
		if d.Action == "migrate" && d.Executed {
			total++
		}
	}
	if total != 1 {
		t.Fatalf("object migrated %d times in total, want exactly 1", total)
	}
}
