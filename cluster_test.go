package rafda

import (
	"strings"
	"testing"

	"rafda/internal/transform"
)

const clusterSource = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// clusterTrio builds three rrp nodes joined into one cluster, with the
// multi-hop proposer rule enabled only where propose[i] says so.  All
// coordination is driven by manual Ticks — no timed loops — so every
// test on it is deterministic.
func clusterTrio(t *testing.T, propose [3]bool, minCalls int) (nodes [3]*Node, clusters [3]*Cluster, eps [3]string) {
	t.Helper()
	prog, err := CompileString(clusterSource)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Transform(WithProtocols("rrp"))
	if err != nil {
		t.Fatal(err)
	}
	names := [3]string{"a", "b", "c"}
	for i := range nodes {
		n, err := tr.NewNode(NodeConfig{Name: names[i]})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		ep, err := n.Serve("rrp", "")
		if err != nil {
			t.Fatal(err)
		}
		var seeds []string
		if i > 0 {
			seeds = []string{eps[0]}
		}
		cl, err := n.JoinCluster(ClusterConfig{
			Seeds:    seeds,
			Fanout:   3,
			Propose:  propose[i],
			MinCalls: minCalls,
			Seed:     int64(i) + 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], clusters[i], eps[i] = n, cl, ep
	}
	return nodes, clusters, eps
}

func tickRounds(rounds int, clusters [3]*Cluster) {
	for i := 0; i < rounds; i++ {
		for _, cl := range clusters {
			cl.Tick()
		}
	}
}

// refGUID digs the exported GUID out of a proxy handle (test-only; real
// operators read GUIDs from telemetry and cluster events).
func refGUID(t *testing.T, ref *Ref) string {
	t.Helper()
	if ref.v.O == nil {
		t.Fatal("nil ref")
	}
	g := ref.v.O.Get(transform.ProxyFieldGUID).S
	if g == "" {
		t.Fatalf("handle %s holds no GUID", ref.ClassName())
	}
	return g
}

// TestClusterConflictingIntentsConverge is the acceptance scenario: the
// object lives on b while a and c simultaneously claim it with
// different evidence strength.  The cluster must reconcile both intents
// to the single deterministic winner (a, higher priority), the home
// must execute exactly one migration, and re-asserting the losing
// intent afterwards must not move the object again — no ping-pong,
// one stable home.
func TestClusterConflictingIntentsConverge(t *testing.T) {
	nodes, clusters, eps := clusterTrio(t, [3]bool{false, false, false}, 0)
	a, b, c := nodes[0], nodes[1], nodes[2]
	tickRounds(2, clusters) // membership settles

	// a creates the contested object on b.
	if err := a.PlaceClass("Counter", eps[1]); err != nil {
		t.Fatal(err)
	}
	made, err := a.Call("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)
	guid := refGUID(t, ref)

	// Conflicting claims: a with priority 60, c with priority 55.
	if ok, why := clusters[0].ProposeMigration(guid, eps[0], 60, "a's affinity"); !ok {
		t.Fatalf("a's intent refused: %s", why)
	}
	if ok, why := clusters[2].ProposeMigration(guid, eps[2], 55, "c's affinity"); !ok {
		t.Fatalf("c's intent refused: %s", why)
	}
	tickRounds(6, clusters)

	if out := b.Stats().MigrationsOut; out != 1 {
		t.Fatalf("home executed %d migrations, want exactly 1; events: %+v", out, clusters[1].Events())
	}
	if in := a.Stats().MigrationsIn; in != 1 {
		t.Fatalf("winner a received %d migrations, want 1", in)
	}
	if in := c.Stats().MigrationsIn; in != 0 {
		t.Fatalf("loser c received %d migrations, want 0", in)
	}

	// The loser re-asserts, louder: the cooldown and the directory must
	// hold the single stable home.
	clusters[2].ProposeMigration(guid, eps[2], 99, "c insists")
	tickRounds(6, clusters)
	if total := a.Stats().MigrationsIn + b.Stats().MigrationsIn + c.Stats().MigrationsIn; total != 1 {
		t.Fatalf("object moved again (total migrations-in %d, want 1)", total)
	}

	// Every member's directory agrees on the home, and the object still
	// works from the original handle with state intact.
	if _, ep, ok := clusters[2].ResolveObject(guid); !ok || ep != eps[0] {
		t.Fatalf("c resolves %s to %q (ok=%v), want %s", guid, ep, ok, eps[0])
	}
	got, err := a.CallOn(ref, "bump")
	if err != nil || got.(int64) != 1 {
		t.Fatalf("bump after convergence: %v %v", got, err)
	}
}

// TestClusterMultiHopMigrationConverges is the multi-hop acceptance
// scenario, fully deterministic: the hot object lives on b, every call
// comes from c, and only a — which neither hosts nor calls it — may
// propose.  Gossip must carry b's affinity rollups to a, a must propose
// the b→c migration (proposer ≠ source ≠ target), b must execute it
// after reconciliation, and c's stale proxy must resolve the new home
// through the directory.  Further traffic and rounds must not move the
// object again.
func TestClusterMultiHopMigrationConverges(t *testing.T) {
	nodes, clusters, eps := clusterTrio(t, [3]bool{true, false, false}, 10)
	b, c := nodes[1], nodes[2]
	tickRounds(2, clusters)

	// c creates the hot object on b (mis-placement) and hammers it.
	if err := c.PlaceClass("Counter", eps[1]); err != nil {
		t.Fatal(err)
	}
	made, err := c.Call("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)
	guid := refGUID(t, ref)
	if !strings.Contains(ref.ClassName(), "Proxy") {
		t.Fatalf("mis-placed object should start as a proxy, is %s", ref.ClassName())
	}

	next := int64(0)
	drive := func(calls int) {
		t.Helper()
		for i := 0; i < calls; i++ {
			got, err := c.CallOn(ref, "bump")
			if err != nil {
				t.Fatalf("bump: %v", err)
			}
			next++
			if got.(int64) != next {
				t.Fatalf("bump returned %v, want %d (state lost across migration)", got, next)
			}
		}
	}

	// Traffic + coordination rounds until the object moves: b's rollup
	// gossips out, a proposes, the intent settles, b executes.
	for round := 0; round < 10 && b.Stats().MigrationsOut == 0; round++ {
		drive(30)
		tickRounds(1, clusters)
	}
	if out := b.Stats().MigrationsOut; out != 1 {
		t.Fatalf("b executed %d migrations, want 1; a events: %+v", out, clusters[0].Events())
	}
	if in := c.Stats().MigrationsIn; in != 1 {
		t.Fatalf("c received %d migrations, want 1", in)
	}

	// Multi-hop provenance: the executed intent's proposer is a.
	var migrated bool
	for _, e := range clusters[1].Events() {
		if e.Kind == "migrate" && e.GUID == guid {
			if e.Peer != "a" {
				t.Fatalf("migration proposed by %q, want a (multi-hop: proposer != source != target)", e.Peer)
			}
			if e.To != eps[2] {
				t.Fatalf("migration targeted %s, want c at %s", e.To, eps[2])
			}
			migrated = true
		}
	}
	if !migrated {
		t.Fatalf("no migrate event on b: %+v", clusters[1].Events())
	}

	// One call may pay the forwarding hop; after it, c reaches its own
	// copy without touching b (directory-collapsed, then self-collapse).
	drive(1)
	beforeB := b.Stats().RemoteCallsIn
	drive(20)
	if afterB := b.Stats().RemoteCallsIn; afterB != beforeB {
		t.Fatalf("calls still flow through b after convergence: %d -> %d", beforeB, afterB)
	}

	// Converged steady state: more traffic, more rounds, no more moves.
	for w := 0; w < 5; w++ {
		drive(30)
		tickRounds(1, clusters)
	}
	if total := b.Stats().MigrationsOut + c.Stats().MigrationsOut + nodes[0].Stats().MigrationsOut; total != 1 {
		t.Fatalf("object migrated %d times in total, want exactly 1 (ping-pong)", total)
	}
}

// TestClusterAdapterDelegatesIntent: a clustered node's adapt engine
// must delegate its confirmed migration as an intent (propose →
// reconcile → act by the home) rather than acting unilaterally — and
// the migration must still land, moving the object to the engine's
// chosen destination.
func TestClusterAdapterDelegatesIntent(t *testing.T) {
	nodes, clusters, eps := clusterTrio(t, [3]bool{false, false, false}, 0)
	a, b := nodes[0], nodes[1]
	tickRounds(2, clusters)

	// Mis-place on b; traffic from a; b's ADAPTER (not a proposer)
	// discovers the affinity.
	adB := b.NewAdapter(AdaptConfig{Threshold: 0.6, MinCalls: 10, Confirm: 2, Budget: 2})
	if err := a.PlaceClass("Counter", eps[1]); err != nil {
		t.Fatal(err)
	}
	made, err := a.Call("Setup", "make")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)

	drive := func(calls int) {
		t.Helper()
		for i := 0; i < calls; i++ {
			if _, err := a.CallOn(ref, "bump"); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Two confirm windows produce the delegated decision; cluster rounds
	// then reconcile and execute it.
	drive(30)
	adB.Tick()
	drive(30)
	adB.Tick()

	var delegated bool
	for _, d := range adB.Decisions() {
		if d.Action == "migrate" {
			if d.Executed {
				t.Fatalf("clustered engine executed unilaterally: %+v", d)
			}
			if d.Delegated {
				delegated = true
			}
		}
	}
	if !delegated {
		t.Fatalf("no delegated migration decision: %+v", adB.Decisions())
	}
	tickRounds(4, clusters)
	if in := a.Stats().MigrationsIn; in != 1 {
		t.Fatalf("delegated intent did not land on a: migrations-in %d; events %+v", in, clusters[1].Events())
	}
}
