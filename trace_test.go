package rafda

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// Node-level tracing tests: every distributed leg a logical call can
// take — nested remote calls, migration re-sends, replica-routed reads,
// write-barrier fan-outs, dedup verdicts and failover redials — must
// stay on the one trace that caused it, verified through the same
// introspection plane rafdac reads.  All of these run under -race in
// CI, so they double as the data-race audit of the span arena, the
// ring, and the env baggage.

const traceSource = `
class Inner {
    int id;
    Inner(int id) { this.id = id; }
    int get() { return id; }
}
class Outer {
    Inner in;
    Outer() { this.in = new Inner(9); }
    int relay() { return in.get(); }
}
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
    int read() { return n; }
}
class Holder {
    static Counter held = new Counter(0);
    static Counter get() { return held; }
}
class Mk {
    static Outer outer() { return new Outer(); }
    static Counter counter() { return new Counter(0); }
}
class Main { static void main() {} }`

func traceFixture(t *testing.T) *Transformed {
	t.Helper()
	prog, err := CompileString(traceSource)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Transform(WithProtocols("rrp"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// traceNode builds one served node with a ring big enough that no test
// span is ever overwritten (the orphan audits need complete history).
func traceNode(t *testing.T, tr *Transformed, name string, net NetProfile) (*Node, string) {
	t.Helper()
	n, err := tr.NewNode(NodeConfig{Name: name, Network: net, TraceSpans: 32768})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ep, err := n.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}
	return n, ep
}

// tSpan is the slice of the introspection "spans" payload these audits
// read (the same shape rafdac and the E14 audit decode).
type tSpan struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Node   string `json:"node"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Dur    int64  `json:"dur"`
	Err    string `json:"err"`
}

// ringUnion snapshots and concatenates the given nodes' flight
// recorders.
func ringUnion(t *testing.T, nodes ...*Node) []tSpan {
	t.Helper()
	var all []tSpan
	for _, n := range nodes {
		out, err := n.IntrospectJSON("spans", "")
		if err != nil {
			t.Fatal(err)
		}
		var part []tSpan
		if err := json.Unmarshal([]byte(out), &part); err != nil {
			t.Fatalf("bad spans payload: %v", err)
		}
		all = append(all, part...)
	}
	return all
}

// oneSpan returns the single span matching the predicate, failing the
// test on zero or several matches.
func oneSpan(t *testing.T, spans []tSpan, what string, match func(tSpan) bool) tSpan {
	t.Helper()
	var found []tSpan
	for _, s := range spans {
		if match(s) {
			found = append(found, s)
		}
	}
	if len(found) != 1 {
		t.Fatalf("%s: %d matching spans, want exactly 1", what, len(found))
	}
	return found[0]
}

// assertNoOrphans checks that every parent edge in the union resolves —
// the cross-node completeness invariant E14 gates under chaos.
func assertNoOrphans(t *testing.T, spans []tSpan) {
	t.Helper()
	known := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		known[s.ID] = true
	}
	for _, s := range spans {
		if s.Parent != 0 && !known[s.Parent] {
			t.Fatalf("orphan span %x (%s %q on %s): parent %x missing from the ring union",
				s.ID, s.Kind, s.Name, s.Node, s.Parent)
		}
	}
}

// TestTraceNestedCallSpansConnected drives one call through a two-hop
// chain — driver calls Outer on b, whose method calls Inner on c — and
// asserts the whole chain is a single connected trace: the driver's
// client span roots it, each server span parents to the client span
// that carried it, and the nested leg proves the env baggage survived
// the dispatch boundary.
func TestTraceNestedCallSpansConnected(t *testing.T) {
	tr := traceFixture(t)
	driver, _ := traceNode(t, tr, "driver", NetProfile{})
	b, epB := traceNode(t, tr, "b", NetProfile{})
	c, epC := traceNode(t, tr, "c", NetProfile{})

	// Mk.outer() runs at the driver, so both placements are the
	// driver's: the Outer lands on b, the Inner its constructor makes
	// lands on c, and relay() becomes a b-to-c hop.
	if err := driver.PlaceClass("Outer", epB); err != nil {
		t.Fatal(err)
	}
	if err := driver.PlaceClass("Inner", epC); err != nil {
		t.Fatal(err)
	}
	made, err := driver.Call("Mk", "outer")
	if err != nil {
		t.Fatal(err)
	}
	got, err := driver.CallOn(made.(*Ref), "relay")
	if err != nil || got.(int64) != 9 {
		t.Fatalf("relay=%v err=%v", got, err)
	}

	spans := ringUnion(t, driver, b, c)
	assertNoOrphans(t, spans)
	root := oneSpan(t, spans, "client relay", func(s tSpan) bool {
		return s.Node == "driver" && s.Kind == "client" && s.Name == "relay"
	})
	if root.Parent != 0 {
		t.Fatalf("host-driven call should root its trace, parent=%x", root.Parent)
	}
	if root.Dur <= 0 {
		t.Fatalf("client span carries no duration: %+v", root)
	}
	srvB := oneSpan(t, spans, "server relay", func(s tSpan) bool {
		return s.Trace == root.Trace && s.Kind == "server" && s.Name == "relay"
	})
	if srvB.Node != "b" || srvB.Parent != root.ID {
		t.Fatalf("server relay span on %s parent %x, want b under %x", srvB.Node, srvB.Parent, root.ID)
	}
	cliB := oneSpan(t, spans, "nested client get", func(s tSpan) bool {
		return s.Trace == root.Trace && s.Kind == "client" && s.Name == "get"
	})
	if cliB.Node != "b" || cliB.Parent != srvB.ID {
		t.Fatalf("nested client span on %s parent %x, want b under %x (env baggage lost)",
			cliB.Node, cliB.Parent, srvB.ID)
	}
	srvC := oneSpan(t, spans, "server get", func(s tSpan) bool {
		return s.Trace == root.Trace && s.Kind == "server" && s.Name == "get"
	})
	if srvC.Node != "c" || srvC.Parent != cliB.ID {
		t.Fatalf("leaf server span on %s parent %x, want c under %x", srvC.Node, srvC.Parent, cliB.ID)
	}
}

// TestTraceMigrationLegsOnCallTrace migrates a counter mid-life and
// asserts the migration legs were recorded, the post-migration call's
// trace reaches the new home, and the union of all three rings stays
// orphan-free.
func TestTraceMigrationLegsOnCallTrace(t *testing.T) {
	tr := traceFixture(t)
	driver, _ := traceNode(t, tr, "driver", NetProfile{})
	server, epServer := traceNode(t, tr, "server", NetProfile{})
	spare, epSpare := traceNode(t, tr, "spare", NetProfile{})

	if err := driver.PlaceClass("Counter", epServer); err != nil {
		t.Fatal(err)
	}
	made, err := driver.Call("Mk", "counter")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)
	if got, err := driver.CallOn(ref, "bump"); err != nil || got.(int64) != 1 {
		t.Fatalf("pre-migration bump=%v err=%v", got, err)
	}
	if err := driver.Migrate(ref, epSpare); err != nil {
		t.Fatal(err)
	}
	if got, err := driver.CallOn(ref, "bump"); err != nil || got.(int64) != 2 {
		t.Fatalf("post-migration bump=%v err=%v", got, err)
	}

	spans := ringUnion(t, driver, server, spare)
	assertNoOrphans(t, spans)
	migrations := 0
	for _, s := range spans {
		if s.Kind == "migration" {
			migrations++
		}
	}
	if migrations == 0 {
		t.Fatal("migration left no migration span in any ring")
	}
	// The post-migration bump is the one whose server span ran on spare.
	srv := oneSpan(t, spans, "server bump on spare", func(s tSpan) bool {
		return s.Node == "spare" && s.Kind == "server" && s.Name == "bump"
	})
	cli := oneSpan(t, spans, "its client span", func(s tSpan) bool {
		return s.ID == srv.Parent
	})
	if cli.Node != "driver" || cli.Kind != "client" || cli.Trace != srv.Trace {
		t.Fatalf("post-migration bump did not connect driver to spare: client %+v", cli)
	}
}

// TestTraceReplicaReadAndWriteBarrier verifies the replication plane's
// two trace kinds end to end: a classified read from a member that
// holds no copy routes to the replica node and leaves a replica-read
// span on the reader's trace, and a write through the same proxy
// serialises at the primary and hangs its fan-out barrier span under
// the primary's server span.
func TestTraceReplicaReadAndWriteBarrier(t *testing.T) {
	tr := traceFixture(t)
	names := []string{"home", "replica", "reader"}
	nodes := make([]*Node, 3)
	eps := make([]string, 3)
	clusters := make([]*Cluster, 3)
	for i, name := range names {
		nodes[i], eps[i] = traceNode(t, tr, name, NetProfile{})
		var seeds []string
		if i > 0 {
			seeds = []string{eps[0]}
		}
		cl, err := nodes[i].JoinCluster(ClusterConfig{Seeds: seeds, Fanout: 3, Seed: int64(i) + 11})
		if err != nil {
			t.Fatal(err)
		}
		clusters[i] = cl
	}
	home, replica, reader := nodes[0], nodes[1], nodes[2]
	tick := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for _, cl := range clusters {
				cl.Tick()
			}
		}
	}
	tick(2) // membership settles

	// home holds the object; reader gets a proxy through the shared
	// static holder.
	held, err := home.Call("Holder", "get")
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.PlaceClass("Holder", eps[0]); err != nil {
		t.Fatal(err)
	}
	rref, err := reader.Call("Holder", "get")
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Replicate(held.(*Ref), eps[1]); err != nil {
		t.Fatal(err)
	}
	tick(4) // replica set + leases gossip out

	if got, err := reader.CallOn(rref.(*Ref), "read"); err != nil || got.(int64) != 0 {
		t.Fatalf("routed read=%v err=%v", got, err)
	}
	if got, err := reader.CallOn(rref.(*Ref), "bump"); err != nil || got.(int64) != 1 {
		t.Fatalf("write through proxy=%v err=%v", got, err)
	}

	spans := ringUnion(t, home, replica, reader)
	assertNoOrphans(t, spans)
	cliRead := oneSpan(t, spans, "client read", func(s tSpan) bool {
		return s.Node == "reader" && s.Kind == "client" && s.Name == "read"
	})
	rep := oneSpan(t, spans, "replica-read span", func(s tSpan) bool {
		return s.Kind == "replica-read" && s.Name == "read"
	})
	if rep.Node != "replica" || rep.Trace != cliRead.Trace {
		t.Fatalf("read was not absorbed at the replica on the caller's trace: %+v", rep)
	}
	cliBump := oneSpan(t, spans, "client bump", func(s tSpan) bool {
		return s.Node == "reader" && s.Kind == "client" && s.Name == "bump"
	})
	srvBump := oneSpan(t, spans, "server bump", func(s tSpan) bool {
		return s.Trace == cliBump.Trace && s.Kind == "server" && s.Name == "bump"
	})
	if srvBump.Node != "home" {
		t.Fatalf("write did not serialise at the primary: server span on %s", srvBump.Node)
	}
	barrier := oneSpan(t, spans, "write barrier", func(s tSpan) bool {
		return s.Kind == "barrier" && s.Trace == cliBump.Trace
	})
	if barrier.Node != "home" || barrier.Parent != srvBump.ID {
		t.Fatalf("barrier span not under the primary's server span: %+v", barrier)
	}
}

// TestTraceChaosLegsConnected injects a seeded dup+kill schedule on a
// single sequential caller and asserts the recovery legs — dedup
// verdicts for absorbed duplicates, failover spans for redials — landed
// on the traces of the calls that rode them, with the union still
// orphan-free and every acked call's client span error-free.
func TestTraceChaosLegsConnected(t *testing.T) {
	tr := traceFixture(t)
	chaos := NetLAN
	chaos.Faults = &NetFaults{Seed: 7, DupPerMille: 40, KillPerMille: 10, FirstSafeWrites: 4}
	driver, _ := traceNode(t, tr, "driver", chaos)
	server, epServer := traceNode(t, tr, "server", chaos)

	if err := driver.PlaceClass("Counter", epServer); err != nil {
		t.Fatal(err)
	}
	made, err := driver.Call("Mk", "counter")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)
	const calls = 300
	for i := 1; i <= calls; i++ {
		if got, err := driver.CallOn(ref, "bump"); err != nil || got.(int64) != int64(i) {
			t.Fatalf("call %d: got=%v err=%v", i, got, err)
		}
	}

	spans := ringUnion(t, driver, server)
	assertNoOrphans(t, spans)
	traces := make(map[uint64]bool)
	roots := 0
	var dedups, failovers int
	for _, s := range spans {
		if s.Node == "driver" && s.Kind == "client" && s.Name == "bump" {
			if s.Err != "" {
				t.Fatalf("acked call's client span carries error %q", s.Err)
			}
			roots++
			traces[s.Trace] = true
		}
	}
	if roots != calls {
		t.Fatalf("%d acked calls left %d client spans", calls, roots)
	}
	for _, s := range spans {
		switch s.Kind {
		case "dedup":
			dedups++
			if !traces[s.Trace] {
				t.Fatalf("dedup verdict on unknown trace %x", s.Trace)
			}
		case "failover":
			failovers++
			if !traces[s.Trace] {
				t.Fatalf("failover span on unknown trace %x", s.Trace)
			}
		}
	}
	if dedups == 0 {
		t.Fatal("dup schedule left no dedup verdict span")
	}
	if failovers == 0 {
		t.Fatal("kill schedule left no failover span")
	}
}

// TestTraceConcurrentChurnNoOrphans is the -race workhorse: parallel
// callers hammer one counter while it migrates under them, and the
// quiesced rings must still hold one error-free connected tree per
// acked call — the deterministic (fault-free) core of the E14 chaos
// audit, exercising the span arena, the ring and the env baggage from
// many goroutines at once.
func TestTraceConcurrentChurnNoOrphans(t *testing.T) {
	tr := traceFixture(t)
	driver, _ := traceNode(t, tr, "driver", NetProfile{})
	server, epServer := traceNode(t, tr, "server", NetProfile{})
	spare, epSpare := traceNode(t, tr, "spare", NetProfile{})

	if err := driver.PlaceClass("Counter", epServer); err != nil {
		t.Fatal(err)
	}
	made, err := driver.Call("Mk", "counter")
	if err != nil {
		t.Fatal(err)
	}
	ref := made.(*Ref)

	const calls = 400
	var next, acked atomic.Int64
	errs := make(chan error, 8)
	migrated := make(chan struct{})
	go func() {
		defer close(migrated)
		for acked.Load() < calls/2 {
		}
		if err := driver.Migrate(ref, epSpare); err != nil {
			errs <- err
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= calls {
				if _, err := driver.CallOn(ref, "bump"); err != nil {
					errs <- err
					return
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	<-migrated
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got, err := driver.CallOn(ref, "read"); err != nil || got.(int64) != calls {
		t.Fatalf("final read=%v err=%v", got, err)
	}

	spans := ringUnion(t, driver, server, spare)
	assertNoOrphans(t, spans)
	roots, crossNode := 0, 0
	remote := make(map[uint64]bool)
	for _, s := range spans {
		if s.Node != "driver" {
			remote[s.Trace] = true
		}
	}
	for _, s := range spans {
		if s.Node == "driver" && s.Kind == "client" && s.Name == "bump" {
			if s.Err != "" {
				t.Fatalf("acked call's client span carries error %q", s.Err)
			}
			roots++
			if remote[s.Trace] {
				crossNode++
			}
		}
	}
	if roots != calls {
		t.Fatalf("%d acked calls left %d client bump spans", calls, roots)
	}
	if crossNode != roots {
		t.Fatalf("%d of %d traces never reached a remote span", roots-crossNode, roots)
	}
}
