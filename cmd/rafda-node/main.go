// Command rafda-node hosts one RAFDA address space: it loads a
// transformed program archive, starts transport servers, applies
// placement policy, and optionally runs the program entry point.
//
//	rafda-node -archive prog.transformed.rar \
//	    -serve rrp://127.0.0.1:7001 -serve soap://127.0.0.1:7002 \
//	    -place C=rrp://10.0.0.2:7001 -place Audit=soap://10.0.0.3:7002 \
//	    [-main Main] [-name node1] [-pool 4] [-adapt] [-adapt-window 250ms] \
//	    [-cluster] [-join rrp://10.0.0.2:7001] [-cluster-heartbeat 100ms] \
//	    [-cluster-propose] [-cluster-fanout 2] \
//	    [-pprof 127.0.0.1:6060] [-trace-spans 8192] [-no-trace] [-max-inflight 256] \
//	    [-dedup-window 1024] [-shed-priority-at 64] [-shed-fairshare-at 64] \
//	    [-codel-target 5ms] [-codel-interval 100ms]
//
// Without -main the node serves until interrupted.  -adapt switches on
// the adaptive placement engine (docs/ADAPTIVE.md): the node watches
// its own call-affinity telemetry and redraws placements — migrating
// hot objects toward their dominant callers — printing each decision.
//
// -cluster (implied by -join) attaches the node to the cluster
// coordination plane (docs/CLUSTER.md): gossip membership with
// liveness, the shared placement directory (stale references resolve
// migrated objects in one hop), and intent reconciliation — adapter
// decisions are proposed to the cluster instead of executed
// unilaterally.  -cluster-propose additionally lets this node propose
// multi-hop migrations (move an object between two *other* nodes) from
// the gossiped affinity evidence.
//
// Observability (docs/OBSERVABILITY.md): the node always runs a
// bounded flight recorder of call spans unless -no-trace.  -pprof
// serves net/http/pprof plus /debug/rafda (the unified introspection
// snapshot, also reachable remotely via rafdac), and SIGQUIT dumps the
// recorder and metrics to stderr without stopping the node.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rafda"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rafda-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var serves, places, joins multiFlag
	archive := flag.String("archive", "", "transformed program archive (.rar)")
	name := flag.String("name", "node", "node name (appears in GUIDs)")
	mainClass := flag.String("main", "", "entry class to run after start (empty: serve only)")
	flag.Var(&serves, "serve", "endpoint to serve, proto://host:port (repeatable)")
	flag.Var(&places, "place", "placement rule Class=endpoint or Class=local (repeatable)")
	poolSize := flag.Int("pool", 0, "connections pooled per peer endpoint (0: GOMAXPROCS, capped at 8; 1: single socket)")
	adaptOn := flag.Bool("adapt", false, "run the adaptive placement engine (docs/ADAPTIVE.md)")
	adaptWindow := flag.Duration("adapt-window", 250*time.Millisecond, "adaptive engine evaluation window")
	clusterOn := flag.Bool("cluster", false, "join the cluster coordination plane (docs/CLUSTER.md); implied by -join")
	flag.Var(&joins, "join", "seed endpoint of an existing cluster member (repeatable)")
	clusterHB := flag.Duration("cluster-heartbeat", 100*time.Millisecond, "cluster gossip period")
	clusterFanout := flag.Int("cluster-fanout", 2, "peers gossiped to per round")
	clusterPropose := flag.Bool("cluster-propose", false, "propose multi-hop migrations from gossiped affinity evidence")
	pprofAddr := flag.String("pprof", "", "debug HTTP address serving net/http/pprof and /debug/rafda (empty: off)")
	traceSpans := flag.Int("trace-spans", 0, "flight recorder ring capacity (0: default 4096)")
	noTrace := flag.Bool("no-trace", false, "disable the distributed-tracing plane (docs/OBSERVABILITY.md)")
	maxInflight := flag.Int("max-inflight", 0, "per-connection dispatch concurrency bound; with per-call deadlines this is the overload-control knob (0: default 256)")
	dedupWindow := flag.Int("dedup-window", 0, "per-caller replay cache entries for the exactly-once plane (0: default 1024)")
	shedPriorityAt := flag.Int("shed-priority-at", 0, "inflight depth where priority-class-0 requests are shed; class p survives to depth<<p (0: off; docs/INTERCEPT.md)")
	shedFairShareAt := flag.Int("shed-fairshare-at", 0, "inflight depth where tenants over their 1/active fair share are shed (0: off)")
	codelTarget := flag.Duration("codel-target", 0, "CoDel target for measured dispatch-slot wait (0: off)")
	codelInterval := flag.Duration("codel-interval", 0, "CoDel sliding window (0: default 100ms)")
	flag.Parse()

	if *archive == "" {
		return fmt.Errorf("-archive is required")
	}
	f, err := os.Open(*archive)
	if err != nil {
		return err
	}
	prog, err := rafda.Decode(f)
	f.Close()
	if err != nil {
		return err
	}
	// The archive may be pre-transformed (contains factories) or plain.
	var tr *rafda.Transformed
	if hasFactories(prog) {
		tr, err = rafda.LoadTransformed(prog)
	} else {
		tr, err = prog.Transform()
	}
	if err != nil {
		return err
	}

	node, err := tr.NewNode(rafda.NodeConfig{
		Name: *name, Output: os.Stdout, PoolSize: *poolSize,
		Limits:  rafda.LimitsConfig{MaxInflight: *maxInflight, DedupWindow: *dedupWindow},
		Tracing: rafda.TracingConfig{Spans: *traceSpans, Disable: *noTrace},
		Shed: rafda.ShedConfig{
			PriorityAt:    *shedPriorityAt,
			FairShareAt:   *shedFairShareAt,
			CoDelTarget:   *codelTarget,
			CoDelInterval: *codelInterval,
		},
	})
	if err != nil {
		return err
	}
	defer node.Close()

	// Debug surfaces: -pprof serves the standard net/http/pprof tree
	// plus /debug/rafda?section=metrics|spans|trace&id=<hex> — the same
	// snapshot wire.OpIntrospect serves remotely.  SIGQUIT dumps the
	// flight recorder and metrics to stderr without stopping the node
	// (replacing the Go runtime's default die-with-stacks behaviour).
	if *pprofAddr != "" {
		http.HandleFunc("/debug/rafda", func(w http.ResponseWriter, r *http.Request) {
			out, err := node.IntrospectJSON(r.URL.Query().Get("section"), r.URL.Query().Get("id"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, out)
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rafda-node: debug http:", err)
			}
		}()
		fmt.Printf("debug http on %s (/debug/pprof/, /debug/rafda)\n", *pprofAddr)
	}
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			dumpDebug(node)
		}
	}()

	for _, s := range serves {
		proto, addr, ok := strings.Cut(s, "://")
		if !ok {
			return fmt.Errorf("bad -serve %q (want proto://host:port)", s)
		}
		ep, err := node.Serve(proto, addr)
		if err != nil {
			return err
		}
		fmt.Printf("serving %s\n", ep)
	}
	for _, p := range places {
		class, endpoint, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -place %q (want Class=endpoint)", p)
		}
		if err := node.PlaceClass(class, endpoint); err != nil {
			return err
		}
		fmt.Printf("placed %s -> %s\n", class, endpoint)
	}

	if *clusterOn || len(joins) > 0 {
		cl, err := node.JoinCluster(rafda.ClusterConfig{
			Seeds:     joins,
			Heartbeat: *clusterHB,
			Fanout:    *clusterFanout,
			Propose:   *clusterPropose,
			OnEvent: func(e rafda.ClusterEvent) {
				switch e.Kind {
				case "peer-join", "peer-suspect", "peer-dead", "peer-leave":
					fmt.Printf("cluster: %s %s (%s)\n", e.Kind, e.Peer, e.From)
				case "migrate", "migrate-fail":
					fmt.Printf("cluster: %s %s %s -> %s (%s)\n", e.Kind, e.GUID, e.From, e.To, e.Detail)
				case "propose", "intent":
					fmt.Printf("cluster: %s %s -> %s by %s (%s)\n", e.Kind, e.GUID, e.To, e.Peer, e.Detail)
				}
			},
		})
		if err != nil {
			return err
		}
		cl.Start()
		fmt.Printf("cluster membership active (%d seeds)\n", len(joins))
	}

	if *adaptOn {
		node.StartAdapter(rafda.AdaptConfig{
			Window: *adaptWindow,
			OnDecision: func(d rafda.AdaptDecision) {
				status := "held"
				if d.Executed {
					status = "executed"
				}
				target := d.GUID
				if target == "" {
					target = "class " + d.Class
				}
				fmt.Printf("adapt: %s %s -> %q (%s): %s\n", d.Action, target, d.Endpoint, status, d.Reason)
			},
		})
		fmt.Println("adaptive placement engine running")
	}

	if *mainClass != "" {
		if err := node.RunMain(*mainClass); err != nil {
			return err
		}
		st := node.Stats()
		fmt.Printf("done: %d remote calls out, %d served, %d created here\n",
			st.RemoteCallsOut, st.RemoteCallsIn, st.Creates)
		return nil
	}

	fmt.Println("serving; interrupt to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

// dumpDebug writes the unified metrics snapshot and the flight
// recorder's ring to stderr — the SIGQUIT crash-cart view.
func dumpDebug(node *rafda.Node) {
	for _, section := range []string{"metrics", "spans"} {
		out, err := node.IntrospectJSON(section, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rafda-node: dump %s: %v\n", section, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "=== rafda %s ===\n%s\n", section, out)
	}
}

func hasFactories(p *rafda.Program) bool {
	for _, c := range p.Classes() {
		if strings.HasSuffix(c, "_O_Factory") {
			return true
		}
	}
	return false
}
