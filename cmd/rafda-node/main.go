// Command rafda-node hosts one RAFDA address space: it loads a
// transformed program archive, starts transport servers, applies
// placement policy, and optionally runs the program entry point.
//
//	rafda-node -archive prog.transformed.rar \
//	    -serve rrp://127.0.0.1:7001 -serve soap://127.0.0.1:7002 \
//	    -place C=rrp://10.0.0.2:7001 -place Audit=soap://10.0.0.3:7002 \
//	    [-main Main] [-name node1] [-pool 4] [-adapt] [-adapt-window 250ms] \
//	    [-cluster] [-join rrp://10.0.0.2:7001] [-cluster-heartbeat 100ms] \
//	    [-cluster-propose] [-cluster-fanout 2]
//
// Without -main the node serves until interrupted.  -adapt switches on
// the adaptive placement engine (docs/ADAPTIVE.md): the node watches
// its own call-affinity telemetry and redraws placements — migrating
// hot objects toward their dominant callers — printing each decision.
//
// -cluster (implied by -join) attaches the node to the cluster
// coordination plane (docs/CLUSTER.md): gossip membership with
// liveness, the shared placement directory (stale references resolve
// migrated objects in one hop), and intent reconciliation — adapter
// decisions are proposed to the cluster instead of executed
// unilaterally.  -cluster-propose additionally lets this node propose
// multi-hop migrations (move an object between two *other* nodes) from
// the gossiped affinity evidence.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rafda"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rafda-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var serves, places, joins multiFlag
	archive := flag.String("archive", "", "transformed program archive (.rar)")
	name := flag.String("name", "node", "node name (appears in GUIDs)")
	mainClass := flag.String("main", "", "entry class to run after start (empty: serve only)")
	flag.Var(&serves, "serve", "endpoint to serve, proto://host:port (repeatable)")
	flag.Var(&places, "place", "placement rule Class=endpoint or Class=local (repeatable)")
	poolSize := flag.Int("pool", 0, "connections pooled per peer endpoint (0: GOMAXPROCS, capped at 8; 1: single socket)")
	adaptOn := flag.Bool("adapt", false, "run the adaptive placement engine (docs/ADAPTIVE.md)")
	adaptWindow := flag.Duration("adapt-window", 250*time.Millisecond, "adaptive engine evaluation window")
	clusterOn := flag.Bool("cluster", false, "join the cluster coordination plane (docs/CLUSTER.md); implied by -join")
	flag.Var(&joins, "join", "seed endpoint of an existing cluster member (repeatable)")
	clusterHB := flag.Duration("cluster-heartbeat", 100*time.Millisecond, "cluster gossip period")
	clusterFanout := flag.Int("cluster-fanout", 2, "peers gossiped to per round")
	clusterPropose := flag.Bool("cluster-propose", false, "propose multi-hop migrations from gossiped affinity evidence")
	flag.Parse()

	if *archive == "" {
		return fmt.Errorf("-archive is required")
	}
	f, err := os.Open(*archive)
	if err != nil {
		return err
	}
	prog, err := rafda.Decode(f)
	f.Close()
	if err != nil {
		return err
	}
	// The archive may be pre-transformed (contains factories) or plain.
	var tr *rafda.Transformed
	if hasFactories(prog) {
		tr, err = rafda.LoadTransformed(prog)
	} else {
		tr, err = prog.Transform()
	}
	if err != nil {
		return err
	}

	node, err := tr.NewNode(rafda.NodeConfig{Name: *name, Output: os.Stdout, PoolSize: *poolSize})
	if err != nil {
		return err
	}
	defer node.Close()

	for _, s := range serves {
		proto, addr, ok := strings.Cut(s, "://")
		if !ok {
			return fmt.Errorf("bad -serve %q (want proto://host:port)", s)
		}
		ep, err := node.Serve(proto, addr)
		if err != nil {
			return err
		}
		fmt.Printf("serving %s\n", ep)
	}
	for _, p := range places {
		class, endpoint, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("bad -place %q (want Class=endpoint)", p)
		}
		if err := node.PlaceClass(class, endpoint); err != nil {
			return err
		}
		fmt.Printf("placed %s -> %s\n", class, endpoint)
	}

	if *clusterOn || len(joins) > 0 {
		cl, err := node.JoinCluster(rafda.ClusterConfig{
			Seeds:     joins,
			Heartbeat: *clusterHB,
			Fanout:    *clusterFanout,
			Propose:   *clusterPropose,
			OnEvent: func(e rafda.ClusterEvent) {
				switch e.Kind {
				case "peer-join", "peer-suspect", "peer-dead", "peer-leave":
					fmt.Printf("cluster: %s %s (%s)\n", e.Kind, e.Peer, e.From)
				case "migrate", "migrate-fail":
					fmt.Printf("cluster: %s %s %s -> %s (%s)\n", e.Kind, e.GUID, e.From, e.To, e.Detail)
				case "propose", "intent":
					fmt.Printf("cluster: %s %s -> %s by %s (%s)\n", e.Kind, e.GUID, e.To, e.Peer, e.Detail)
				}
			},
		})
		if err != nil {
			return err
		}
		cl.Start()
		fmt.Printf("cluster membership active (%d seeds)\n", len(joins))
	}

	if *adaptOn {
		node.StartAdapter(rafda.AdaptConfig{
			Window: *adaptWindow,
			OnDecision: func(d rafda.AdaptDecision) {
				status := "held"
				if d.Executed {
					status = "executed"
				}
				target := d.GUID
				if target == "" {
					target = "class " + d.Class
				}
				fmt.Printf("adapt: %s %s -> %q (%s): %s\n", d.Action, target, d.Endpoint, status, d.Reason)
			},
		})
		fmt.Println("adaptive placement engine running")
	}

	if *mainClass != "" {
		if err := node.RunMain(*mainClass); err != nil {
			return err
		}
		st := node.Stats()
		fmt.Printf("done: %d remote calls out, %d served, %d created here\n",
			st.RemoteCallsOut, st.RemoteCallsIn, st.Creates)
		return nil
	}

	fmt.Println("serving; interrupt to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

func hasFactories(p *rafda.Program) bool {
	for _, c := range p.Classes() {
		if strings.HasSuffix(c, "_O_Factory") {
			return true
		}
	}
	return false
}
