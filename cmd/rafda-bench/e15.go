package main

// E15 — open-loop latency-SLO macro-workload.
//
// Every earlier tier is a closed-loop microbenchmark: callers wait for
// each response before sending the next request, so the offered load
// self-throttles exactly when the system slows down and the tail
// disappears from the record.  E15 is the open-loop complement: a
// Poisson arrival process offers calls at a configured rate whether or
// not earlier calls have finished, popularity over thousands of objects
// follows a Zipf law (a few hot objects serialise on their gates while
// a long tail stays cold), and every arrival carries one of tens of
// tenant identities plus a wire deadline.  Mid-run the harness injects
// the two disturbances a production deployment actually sees — a node
// dies (its shard of objects is lost until re-created elsewhere) and
// the surviving link degrades (client-side netsim latency/jitter) — and
// the record reports exact per-tenant p50/p99/p999 for the clean phases
// against a configured SLO.
//
// Latency is measured from each call's *scheduled* arrival time, not
// its send time, so scheduler lateness under overload counts against
// the system rather than being silently omitted (the open-loop
// correction for coordinated omission).
//
// Key row (gate): slo_ok — 1.0 iff every tenant's clean-phase p99 met
// the SLO and the clean-phase error rate stayed under the bound.
// Binary, machine-independent.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rafda"
	"rafda/internal/netsim"
	"rafda/internal/telemetry"
	"rafda/internal/transport"
	"rafda/internal/wire"
)

const e15Source = `
class Item {
    private int v;
    Item(int v0) { this.v = v0; }
    int get() { return v; }
    int put(int x) { this.v = v + x; return v; }
    int hold(int us) {
        sys.Clock.sleepMicros(us);
        v = v + 1;
        return v;
    }
}
class Mk {
    static Item make(int v0) { return new Item(v0); }
}
class Main { static void main() {} }`

type e15Config struct {
	rate     float64 // offered load, calls/s
	warm     time.Duration
	churn    time.Duration
	recover  time.Duration
	objects  int
	tenants  int
	zipfS    float64
	seed     uint64
	deadline time.Duration // per-call wire deadline
	sloP99   time.Duration // per-tenant clean-phase p99 bar
	maxErr   float64       // tolerated clean-phase error fraction

	arm        string  // main | shed | both
	shedFactor float64 // shed arm: offered-load multiple of measured capacity
}

// e15Phases names the run's three windows in timeline order.
var e15Phases = [3]string{"warm", "churn", "recovery"}

// E15Phase is one aggregate timeline-window row.
type E15Phase struct {
	Phase           string  `json:"phase"`
	Calls           int     `json:"calls"`
	Errors          int     `json:"errors"`
	Unavailable     int     `json:"unavailable"` // arrivals for a dead shard, never sent
	DeadlineRejects int     `json:"deadline_rejects"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	P999Ms          float64 `json:"p999_ms"`
	MaxMs           float64 `json:"max_ms"`
}

// E15Tenant is one per-tenant clean-phase (warm+recovery) percentile
// row — the rows the SLO verdict is computed over.
type E15Tenant struct {
	Tenant string  `json:"tenant"`
	Calls  int     `json:"calls"`
	Errors int     `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	SloMet bool    `json:"slo_met"`
}

// E15Overload is one server node's overload counters after the run.
type E15Overload struct {
	Node string `json:"node"`
	telemetry.OverloadSample
}

// E15Report is the top-level BENCH_E15.json document.
type E15Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	RatePerSec   float64 `json:"rate_per_sec"`
	Objects      int     `json:"objects"`
	ChurnObjects int     `json:"churn_objects"` // shard lost and re-created mid-run
	Tenants      int     `json:"tenants"`
	ZipfS        float64 `json:"zipf_s"`
	Seed         uint64  `json:"seed"`
	DeadlineMs   float64 `json:"deadline_ms"`
	SloP99Ms     float64 `json:"slo_p99_ms"`
	MaxErrRate   float64 `json:"max_clean_err_rate"`

	Phases     []E15Phase  `json:"phases"`
	TenantRows []E15Tenant `json:"tenant_rows"`

	WorstTenantP99Ms float64       `json:"worst_tenant_p99_ms"`
	CleanErrorRate   float64       `json:"clean_error_rate"`
	RehomeMs         float64       `json:"rehome_ms"` // churn shard dark time: node death to last object re-created
	Overload         []E15Overload `json:"server_overload"`

	SloOK float64 `json:"slo_ok"`

	// The shed arm (e15shed.go): sustained >=3x saturation against the
	// proactive shedding tier.  Nil when the arm was not run.
	ShedArm *E15ShedArm `json:"shed_arm,omitempty"`
	ShedOK  float64     `json:"shed_ok"`
}

// e15Entry is one live object's current address; the pointer in the
// object table is swapped atomically when the churn shard is re-homed.
type e15Entry struct {
	ep   string
	guid string
}

// e15Bucket accumulates one (phase, tenant) cell's outcomes.
type e15Bucket struct {
	mu              sync.Mutex
	latMs           []float64
	errors          int
	unavailable     int
	deadlineRejects int
}

func (b *e15Bucket) ok(ms float64) {
	b.mu.Lock()
	b.latMs = append(b.latMs, ms)
	b.mu.Unlock()
}

func (b *e15Bucket) fail(resp string, sent bool) {
	b.mu.Lock()
	b.errors++
	if !sent {
		b.unavailable++
	}
	if strings.Contains(resp, "deadline expired") {
		b.deadlineRejects++
	}
	b.mu.Unlock()
}

// pctile returns the q-quantile (nearest rank) of sorted.
func pctile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// e15MakeObjects creates n objects through the class factory over the
// raw wire and returns their table entries.
func e15MakeObjects(client transport.Client, ep string, base, n int) ([]*e15Entry, error) {
	entries := make([]*e15Entry, 0, n)
	for i := 0; i < n; i++ {
		resp, err := client.Call(&wire.Request{
			ID: 1, Op: wire.OpInvokeClass, Class: "Mk", Method: "make",
			Args: []wire.Value{{Kind: wire.KInt, Int: int64(base + i)}},
		})
		if err != nil {
			return nil, fmt.Errorf("make object %d at %s: %w", base+i, ep, err)
		}
		if resp.Err != "" || resp.Result.Ref == nil {
			return nil, fmt.Errorf("make object %d at %s: %+v", base+i, ep, resp)
		}
		entries = append(entries, &e15Entry{ep: ep, guid: resp.Result.Ref.GUID})
	}
	return entries, nil
}

// e15 orchestrates the experiment's two arms.  The main arm is the
// churn/SLO timeline described atop this file; the shed arm
// (e15shed.go) saturates a shedding-configured node at a multiple of
// its measured capacity and checks the proactive policies protect the
// high-priority tenants.  -e15-arm selects main, shed or both.
func e15(cfg e15Config, jsonPath string) error {
	if cfg.objects < 20 || cfg.tenants < 2 {
		return fmt.Errorf("e15 wants at least 20 objects and 2 tenants (got %d/%d)", cfg.objects, cfg.tenants)
	}
	runMain := cfg.arm == "" || cfg.arm == "main" || cfg.arm == "both"
	runShed := cfg.arm == "shed" || cfg.arm == "both"
	if !runMain && !runShed {
		return fmt.Errorf("bad -e15-arm %q (want main, shed or both)", cfg.arm)
	}
	report := E15Report{
		Experiment: "e15",
		Description: "open-loop latency SLO: Poisson arrivals, Zipf object popularity, per-tenant " +
			"deadlined calls; node churn + link degradation mid-run; exact clean-phase percentiles vs SLO; " +
			"plus a proactive load-shedding arm at >=3x measured capacity",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		RatePerSec: cfg.rate,
		Objects:    cfg.objects,
		Tenants:    cfg.tenants,
		ZipfS:      cfg.zipfS,
		Seed:       cfg.seed,
		DeadlineMs: float64(cfg.deadline) / float64(time.Millisecond),
		SloP99Ms:   float64(cfg.sloP99) / float64(time.Millisecond),
		MaxErrRate: cfg.maxErr,
	}
	if runMain {
		if err := e15Main(cfg, &report); err != nil {
			return err
		}
	}
	if runShed {
		if err := e15Shed(cfg, &report); err != nil {
			return err
		}
	}

	if jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("machine-readable results written to %s\n", jsonPath)
	}
	if runMain && report.SloOK != 1.0 {
		return fmt.Errorf("SLO missed: worst tenant p99 %.2fms (bar %.0fms), clean error rate %.4f (bound %.4f)",
			report.WorstTenantP99Ms, report.SloP99Ms, report.CleanErrorRate, cfg.maxErr)
	}
	if runShed && report.ShedOK != 1.0 {
		return fmt.Errorf("shed arm failed: shed_ok = 0 (see the shed-arm table above)")
	}
	return nil
}

// e15Main runs the churn/SLO arm and fills the report's main-arm rows.
func e15Main(cfg e15Config, report *E15Report) error {
	prog, err := rafda.CompileString(e15Source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return err
	}
	const steps = int64(1) << 40
	mkNode := func(name string) (*rafda.Node, string, error) {
		n, err := tr.NewNode(rafda.NodeConfig{Name: name, MaxSteps: steps})
		if err != nil {
			return nil, "", err
		}
		ep, err := n.Serve("rrp", "")
		if err != nil {
			n.Close()
			return nil, "", err
		}
		return n, ep, nil
	}
	nodeA, epA, err := mkNode("srv-a")
	if err != nil {
		return err
	}
	defer nodeA.Close()
	nodeB, epB, err := mkNode("srv-b")
	if err != nil {
		return err
	}
	var bClosed atomic.Bool
	defer func() {
		if !bClosed.Load() {
			nodeB.Close()
		}
	}()

	// Two client planes to each server: a clean loopback transport and a
	// degraded one (client-side netsim latency+jitter) that the churn
	// window swings traffic onto — the "link degradation mid-run" leg.
	clean := transport.NewRRP(transport.Options{})
	degradedProfile := netsim.Profile{
		Latency: 5 * time.Millisecond, Jitter: time.Millisecond,
		BandwidthBps: 1e8, Seed: cfg.seed | 1,
	}
	degraded := transport.NewRRP(transport.Options{Profile: degradedProfile})
	cleanA, err := clean.Dial(epA)
	if err != nil {
		return err
	}
	defer cleanA.Close()
	cleanB, err := clean.Dial(epB)
	if err != nil {
		return err
	}
	defer cleanB.Close()
	degA, err := degraded.Dial(epA)
	if err != nil {
		return err
	}
	defer degA.Close()
	clientFor := func(ep string, useDegraded bool) transport.Client {
		if ep == epB {
			return cleanB // the B shard dies when degradation starts
		}
		if useDegraded {
			return degA
		}
		return cleanA
	}

	// Object table: ~90% of objects on A, every 10th on B (the churn
	// shard lost mid-run).  Entries swap atomically when re-homed.
	objs := make([]atomic.Pointer[e15Entry], cfg.objects)
	var aIdx, bIdx []int
	for i := 0; i < cfg.objects; i++ {
		if i%10 == 9 {
			bIdx = append(bIdx, i)
		} else {
			aIdx = append(aIdx, i)
		}
	}
	report.ChurnObjects = len(bIdx)
	aEntries, err := e15MakeObjects(cleanA, epA, 0, len(aIdx))
	if err != nil {
		return err
	}
	for k, i := range aIdx {
		objs[i].Store(aEntries[k])
	}
	bEntries, err := e15MakeObjects(cleanB, epB, len(aIdx), len(bIdx))
	if err != nil {
		return err
	}
	for k, i := range bIdx {
		objs[i].Store(bEntries[k])
	}

	// (phase, tenant) outcome cells.
	buckets := make([][]e15Bucket, len(e15Phases))
	for p := range buckets {
		buckets[p] = make([]e15Bucket, cfg.tenants)
	}
	total := cfg.warm + cfg.churn + cfg.recover
	churnAt, recoverAt := cfg.warm, cfg.warm+cfg.churn
	phaseOf := func(off time.Duration) int {
		switch {
		case off < churnAt:
			return 0
		case off < recoverAt:
			return 1
		default:
			return 2
		}
	}

	// The disturbance timeline: at churnAt node B dies (its shard goes
	// unavailable until re-created on A) and the link to A degrades; at
	// recoverAt the link heals.  Re-homing runs concurrently with the
	// arrival stream, as a real failover would.
	var useDegraded atomic.Bool
	var rehomeNs atomic.Int64
	var timelineWG sync.WaitGroup
	deadlineUs := uint64(cfg.deadline / time.Microsecond)
	start := time.Now()
	timelineWG.Add(1)
	go func() {
		defer timelineWG.Done()
		time.Sleep(time.Until(start.Add(churnAt)))
		useDegraded.Store(true)
		died := time.Now()
		for _, i := range bIdx {
			objs[i].Store(nil) // shard dark until re-homed
		}
		bClosed.Store(true)
		nodeB.Close()
		for k, i := range bIdx {
			re, err := e15MakeObjects(cleanA, epA, cfg.objects+k, 1)
			if err != nil {
				return // arrivals keep counting the shard unavailable
			}
			objs[i].Store(re[0])
		}
		rehomeNs.Store(int64(time.Since(died)))
	}()
	timelineWG.Add(1)
	go func() {
		defer timelineWG.Done()
		time.Sleep(time.Until(start.Add(recoverAt)))
		useDegraded.Store(false)
	}()

	// The open-loop generator: absolute Poisson schedule, one goroutine
	// per arrival, never waiting for completions.  A late scheduler
	// fires immediately and the lateness lands in the measured latency.
	rng := rand.New(rand.NewSource(int64(cfg.seed)))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.objects-1))
	var callWG sync.WaitGroup
	offered := 0
	for next := time.Duration(0); ; {
		next += time.Duration(rng.ExpFloat64() / cfg.rate * float64(time.Second))
		if next >= total {
			break
		}
		obj := int(zipf.Uint64())
		tenant := offered % cfg.tenants
		write := offered%10 == 0
		offered++
		sched := start.Add(next)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		bucket := &buckets[phaseOf(next)][tenant]
		callWG.Add(1)
		go func() {
			defer callWG.Done()
			e := objs[obj].Load()
			if e == nil {
				bucket.fail("shard unavailable", false)
				return
			}
			req := &wire.Request{
				ID: 1, Op: wire.OpInvoke, GUID: e.guid, Method: "get",
				Caller:     fmt.Sprintf("tenant-%02d", tenant),
				DeadlineUs: deadlineUs,
			}
			if write {
				req.Method = "put"
				req.Args = []wire.Value{{Kind: wire.KInt, Int: 1}}
			}
			resp, err := clientFor(e.ep, useDegraded.Load()).Call(req)
			ms := float64(time.Since(sched)) / float64(time.Millisecond)
			switch {
			case err != nil:
				bucket.fail(err.Error(), true)
			case resp.Err != "":
				bucket.fail(resp.Err, true)
			default:
				bucket.ok(ms)
			}
		}()
	}
	callWG.Wait()
	timelineWG.Wait()

	// Aggregate: per-phase rows over all tenants, per-tenant rows over
	// the clean phases (warm + recovery) for the SLO verdict.
	for p, name := range e15Phases {
		var all []float64
		row := E15Phase{Phase: name}
		for t := range buckets[p] {
			b := &buckets[p][t]
			all = append(all, b.latMs...)
			row.Errors += b.errors
			row.Unavailable += b.unavailable
			row.DeadlineRejects += b.deadlineRejects
		}
		sort.Float64s(all)
		row.Calls = len(all) + row.Errors
		row.P50Ms, row.P99Ms, row.P999Ms = pctile(all, 0.50), pctile(all, 0.99), pctile(all, 0.999)
		if n := len(all); n > 0 {
			row.MaxMs = all[n-1]
		}
		report.Phases = append(report.Phases, row)
	}
	sloOK := true
	var cleanCalls, cleanErrs int
	for t := 0; t < cfg.tenants; t++ {
		var lat []float64
		row := E15Tenant{Tenant: fmt.Sprintf("tenant-%02d", t)}
		for _, p := range []int{0, 2} {
			b := &buckets[p][t]
			lat = append(lat, b.latMs...)
			row.Errors += b.errors
		}
		sort.Float64s(lat)
		row.Calls = len(lat) + row.Errors
		row.P50Ms, row.P99Ms, row.P999Ms = pctile(lat, 0.50), pctile(lat, 0.99), pctile(lat, 0.999)
		if n := len(lat); n > 0 {
			row.MaxMs = lat[n-1]
		}
		row.SloMet = len(lat) > 0 && row.P99Ms <= report.SloP99Ms
		if !row.SloMet {
			sloOK = false
		}
		if row.P99Ms > report.WorstTenantP99Ms {
			report.WorstTenantP99Ms = row.P99Ms
		}
		cleanCalls += row.Calls
		cleanErrs += row.Errors
		report.TenantRows = append(report.TenantRows, row)
	}
	if cleanCalls > 0 {
		report.CleanErrorRate = float64(cleanErrs) / float64(cleanCalls)
	}
	if report.CleanErrorRate > cfg.maxErr {
		sloOK = false
	}
	if sloOK {
		report.SloOK = 1.0
	}
	report.RehomeMs = float64(rehomeNs.Load()) / float64(time.Millisecond)

	// The servers' own view of the run: overload counters out of the
	// same introspection snapshot rafdac top and /debug/rafda render.
	for _, sv := range []struct {
		name string
		n    *rafda.Node
	}{{"srv-a", nodeA}, {"srv-b", nodeB}} {
		out, err := sv.n.IntrospectJSON("metrics", "")
		if err != nil {
			return err
		}
		var in struct {
			Overload telemetry.OverloadSample `json:"overload"`
		}
		if err := json.Unmarshal([]byte(out), &in); err != nil {
			return fmt.Errorf("%s introspection: %w", sv.name, err)
		}
		report.Overload = append(report.Overload, E15Overload{Node: sv.name, OverloadSample: in.Overload})
	}

	fmt.Printf("open-loop %.0f calls/s, %d objects (Zipf s=%.2f, %d on the churn shard), %d tenants, "+
		"deadline %v, %d arrivals offered\n\n",
		cfg.rate, cfg.objects, cfg.zipfS, report.ChurnObjects, cfg.tenants, cfg.deadline, offered)
	fmt.Printf("  %-9s %8s %7s %7s %9s %9s %9s %9s\n",
		"phase", "calls", "errors", "unavail", "p50", "p99", "p999", "max")
	for _, p := range report.Phases {
		fmt.Printf("  %-9s %8d %7d %7d %7.2fms %7.2fms %7.2fms %7.2fms\n",
			p.Phase, p.Calls, p.Errors, p.Unavailable, p.P50Ms, p.P99Ms, p.P999Ms, p.MaxMs)
	}
	fmt.Printf("\n  clean-phase per-tenant percentiles vs SLO p99 <= %.0fms:\n", report.SloP99Ms)
	fmt.Printf("  %-10s %7s %7s %9s %9s %9s  %s\n", "tenant", "calls", "errors", "p50", "p99", "p999", "slo")
	for _, t := range report.TenantRows {
		verdict := "met"
		if !t.SloMet {
			verdict = "MISSED"
		}
		fmt.Printf("  %-10s %7d %7d %7.2fms %7.2fms %7.2fms  %s\n",
			t.Tenant, t.Calls, t.Errors, t.P50Ms, t.P99Ms, t.P999Ms, verdict)
	}
	for _, ov := range report.Overload {
		fmt.Printf("\n  %s overload: rejects %d  expiries %d  outbox stalls %d  inflight hw %d",
			ov.Node, ov.AdmissionRejects, ov.DeadlineExpiries, ov.OutboxStalls, ov.InflightHighWater)
	}
	fmt.Printf("\n\n  churn shard (%d objects) re-homed onto srv-a in %.1fms\n",
		report.ChurnObjects, report.RehomeMs)
	fmt.Printf("  worst tenant p99 %.2fms, clean error rate %.4f (bound %.4f): slo_ok = %.0f\n",
		report.WorstTenantP99Ms, report.CleanErrorRate, cfg.maxErr, report.SloOK)
	return nil
}
