package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The perf-regression gate: compare freshly generated BENCH_*.json
// records against the committed ones and fail when a key row regresses
// beyond the tolerance.  One key row per experiment — the row each
// experiment's write-up treats as its headline:
//
//	e7   sim-LAN multiplexed p=64 calls/s    (wire concurrency ceiling)
//	e9   converged_ratio                     (adaptive convergence)
//	e10  converged_ratio                     (cluster convergence)
//	e11  best pooled sim-LAN p=64 calls/s    (pooled-transport ceiling)
//	e12  exactly_once_ok                     (chaos-audited correctness)
//	e13  read_lift                           (replication read scaling)
//	e14  overhead_ok                         (tracing overhead bound + chaos trace audit)
//	e15  slo_ok                              (open-loop per-tenant p99 vs SLO, binary)
//	e15shed  shed_ok                         (proactive shedding protects hp tenants at >=3x, binary)
//
// Ratios (e9/e10/e13) and the e12 pass fraction are machine-independent.  The calls/s rows (e7/e11)
// are only as sharp as the committed side: today's committed records
// come from the 1-core dev container, so against a faster CI runner
// they catch only catastrophic transport regressions — the ROADMAP
// names committing a runner-class record (and tightening the
// tolerance) as the follow-up that makes these rows bite.  The fresh
// side is always the bench-gate job's own runner class, so the
// comparison tightens automatically once the committed side matches.

// readReport decodes one BENCH record into v.
func readReport(dir, exp string, v any) error {
	path := filepath.Join(dir, "BENCH_"+strings.ToUpper(exp)+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// gateKeyMetric extracts the enforced key row from one experiment's
// record in dir.
func gateKeyMetric(exp, dir string) (name string, val float64, err error) {
	switch exp {
	case "e7":
		var r E7Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		for _, row := range r.Results {
			if row.Network == "lan" && row.Mode == "multiplexed" && row.Parallelism == 64 {
				return "lan/multiplexed/p64 calls/s", row.CallsPerSec, nil
			}
		}
		return "", 0, fmt.Errorf("e7: no lan/multiplexed/p64 row in %s", dir)
	case "e9":
		var r E9Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		return "converged_ratio", r.ConvergedRatio, nil
	case "e10":
		var r E10Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		return "converged_ratio", r.ConvergedRatio, nil
	case "e11":
		var r E11Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		var best float64
		for _, row := range r.Results {
			// Pool > 1 only: the key row must measure the *pooled*
			// ceiling — counting the pool=1 baseline would let a total
			// pooling collapse pass on the baseline's own throughput.
			if row.Network == "lan" && row.Parallelism == 64 && row.Pool > 1 && row.CallsPerSec > best {
				best = row.CallsPerSec
			}
		}
		if best == 0 {
			return "", 0, fmt.Errorf("e11: no pooled lan/p64 rows in %s", dir)
		}
		return "best pooled lan/p64 calls/s", best, nil
	case "e12":
		var r E12Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		return "exactly_once_ok", r.ExactlyOnceOK, nil
	case "e13":
		var r E13Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		return "read_lift", r.ReadLift, nil
	case "e14":
		var r E14Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		return "overhead_ok", r.OverheadOK, nil
	case "e15":
		var r E15Report
		if err := readReport(dir, exp, &r); err != nil {
			return "", 0, err
		}
		return "slo_ok", r.SloOK, nil
	case "e15shed":
		// The shed arm rides in e15's record; it gets its own gate row so
		// a shedding regression is named, not folded into slo_ok.
		var r E15Report
		if err := readReport(dir, "e15", &r); err != nil {
			return "", 0, err
		}
		return "shed_ok", r.ShedOK, nil
	default:
		return "", 0, fmt.Errorf("gate: no key metric defined for experiment %q", exp)
	}
}

// stableTolerance caps the tolerance for the stable tiers — records
// committed from the same runner class as CI, where 30% of headroom
// would hide real regressions.  The e15/e15shed rows are binary
// (slo_ok/shed_ok are 0 or 1), so any cap below 100% makes 1 -> 0 fail
// regardless of the flag.
const stableTolerance = 0.20

// gateTolerance resolves one experiment's effective tolerance: the
// -gate-tolerance flag, tightened to stableTolerance for the stable
// tiers.
func gateTolerance(exp string, flagTol float64) float64 {
	switch exp {
	case "e7", "e11", "e13", "e14", "e15", "e15shed":
		if flagTol > stableTolerance {
			return stableTolerance
		}
	}
	return flagTol
}

// runGate compares the fresh records in freshDir against the committed
// ones in committedDir, one key row per experiment, and returns an
// error naming every row that regressed more than its tolerance.
func runGate(exps []string, committedDir, freshDir string, tolerance float64) error {
	fmt.Printf("perf-regression gate: fresh %s vs committed %s, tolerance %.0f%% (stable tiers capped at %.0f%%)\n\n",
		freshDir, committedDir, 100*tolerance, 100*stableTolerance)
	fmt.Printf("  %-4s %-32s %12s %12s %8s %5s  %s\n", "exp", "key row", "committed", "fresh", "ratio", "tol", "verdict")
	var failures []string
	for _, exp := range exps {
		exp = strings.TrimSpace(exp)
		if exp == "" {
			continue
		}
		name, committed, err := gateKeyMetric(exp, committedDir)
		if err != nil {
			return fmt.Errorf("committed record: %w", err)
		}
		_, fresh, err := gateKeyMetric(exp, freshDir)
		if err != nil {
			return fmt.Errorf("fresh record: %w", err)
		}
		tol := gateTolerance(exp, tolerance)
		ratio := 0.0
		if committed > 0 {
			ratio = fresh / committed
		}
		verdict := "ok"
		if fresh < committed*(1-tol) {
			verdict = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s %s: fresh %.3g vs committed %.3g (%.0f%%, tolerance %.0f%%)",
					exp, name, fresh, committed, 100*ratio, 100*tol))
		}
		fmt.Printf("  %-4s %-32s %12.3f %12.3f %7.0f%% %4.0f%%  %s\n",
			exp, name, committed, fresh, 100*ratio, 100*tol, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d key row(s) regressed beyond tolerance:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Println("\ngate passed: no key row regressed beyond tolerance")
	return nil
}
