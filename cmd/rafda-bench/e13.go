package main

// E13 — read-replication of a hot object.
//
// One read-hot object, three cluster nodes over the simulated LAN.
// Phase A measures the single-home deployment: the object lives on its
// home node and two caller nodes hammer a read-only method through
// their proxies, every read paying the LAN round trip.  Phase B
// replicates the object to both caller nodes (home stays the
// lease-holding primary) and re-measures: the proxy read path resolves
// the local replica through the cluster directory and reads collapse to
// same-address-space calls, so aggregate read throughput should scale
// near-linearly with replica count.  The experiment then performs one
// write through a caller's proxy — it serialises at the primary, bumps
// the epoch and fans out to every copy before acknowledging — and
// asserts both callers immediately read the new value (no stale window
// after the ack; docs/REPLICATION.md).
//
// Key row (gate): read_lift — replicated / single-home aggregate
// reads/s, machine-independent.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rafda"
)

const e13Source = `
class Hot {
    private int v;
    Hot(int v0) { this.v = v0; }
    int get() { return v; }
    int set(int x) { this.v = x; return x; }
}
class Setup {
    static Hot obj = new Hot(41);
    static Hot get() { return obj; }
}
class Main { static void main() {} }`

type e13Config struct {
	heartbeat time.Duration
	phase     time.Duration
	parallel  int // caller goroutines per reader node
	minLift   float64
	pool      int
}

// E13Report is the top-level BENCH_E13.json document.
type E13Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Parallel    int    `json:"parallelism_per_reader"`
	Heartbeat   string `json:"cluster_heartbeat"`
	Replicas    int    `json:"replicas"` // copies incl. the primary

	SingleHomeReadsPerSec float64 `json:"single_home_reads_per_sec"`
	ReplicatedReadsPerSec float64 `json:"replicated_reads_per_sec"`
	ReadLift              float64 `json:"read_lift"`

	WriteVisibleImmediately bool `json:"write_visible_immediately"`

	SingleHomeBuckets []E9Bucket `json:"single_home_buckets"`
	ReplicatedBuckets []E9Bucket `json:"replicated_buckets"`
}

// e13Drive hammers ref's read method from parallel goroutines on every
// reader simultaneously and samples aggregate throughput into 100ms
// buckets.
func e13Drive(nodes []*rafda.Node, refs []*rafda.Ref, parallel int, phase time.Duration) ([]E9Bucket, error) {
	var calls atomic.Int64
	errs := make(chan error, len(nodes)*parallel)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, n := range nodes {
		ref := refs[i]
		for g := 0; g < parallel; g++ {
			wg.Add(1)
			go func(n *rafda.Node, ref *rafda.Ref) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := n.CallOn(ref, "get"); err != nil {
						errs <- err
						return
					}
					calls.Add(1)
				}
			}(n, ref)
		}
	}
	const bucket = 100 * time.Millisecond
	var buckets []E9Bucket
	start := time.Now()
	prev := int64(0)
	tick := time.NewTicker(bucket)
	for time.Since(start) < phase {
		<-tick.C
		cur := calls.Load()
		buckets = append(buckets, E9Bucket{
			OffsetMs:    time.Since(start).Milliseconds(),
			CallsPerSec: float64(cur-prev) / bucket.Seconds(),
		})
		prev = cur
	}
	tick.Stop()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return buckets, nil
}

// e13LocalRead probes whether n currently serves a read of ref without
// leaving the address space (the replica route has landed): one call,
// checked against the node's outbound-call counter.
func e13LocalRead(n *rafda.Node, ref *rafda.Ref) (bool, error) {
	before := n.Stats().RemoteCallsOut
	if _, err := n.CallOn(ref, "get"); err != nil {
		return false, err
	}
	return n.Stats().RemoteCallsOut == before, nil
}

func e13(cfg e13Config, jsonPath string) error {
	report := E13Report{
		Experiment: "e13",
		Description: "read replication: one read-hot object, 3-node cluster; reads route to local " +
			"replicas while writes serialise through the lease-holding primary",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Parallel:   cfg.parallel,
		Heartbeat:  cfg.heartbeat.String(),
		Replicas:   3,
	}
	prog, err := rafda.CompileString(e13Source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return err
	}

	home, epHome, err := e10Node(tr, "home", cfg.pool)
	if err != nil {
		return err
	}
	defer home.Close()
	readerA, epA, err := e10Node(tr, "reader-a", cfg.pool)
	if err != nil {
		return err
	}
	defer readerA.Close()
	readerB, epB, err := e10Node(tr, "reader-b", cfg.pool)
	if err != nil {
		return err
	}
	defer readerB.Close()

	ccfg := func(seeds ...string) rafda.ClusterConfig {
		return rafda.ClusterConfig{Seeds: seeds, Heartbeat: cfg.heartbeat, Fanout: 3}
	}
	clHome, err := home.JoinCluster(ccfg())
	if err != nil {
		return err
	}
	clA, err := readerA.JoinCluster(ccfg(epHome))
	if err != nil {
		return err
	}
	clB, err := readerB.JoinCluster(ccfg(epHome, epA))
	if err != nil {
		return err
	}
	clHome.Start()
	clA.Start()
	clB.Start()
	defer func() { clHome.Stop(); clA.Stop(); clB.Stop() }()

	// The hot object materialises at its home (Setup's class init runs
	// there); each reader resolves the same instance into a proxy.
	hot, err := home.Call("Setup", "get")
	if err != nil {
		return err
	}
	homeRef := hot.(*rafda.Ref)
	for _, r := range []*rafda.Node{readerA, readerB} {
		if err := r.PlaceClass("Setup", epHome); err != nil {
			return err
		}
	}
	ra, err := readerA.Call("Setup", "get")
	if err != nil {
		return err
	}
	rb, err := readerB.Call("Setup", "get")
	if err != nil {
		return err
	}
	readers := []*rafda.Node{readerA, readerB}
	refs := []*rafda.Ref{ra.(*rafda.Ref), rb.(*rafda.Ref)}

	// Phase A — single home: every read from the readers is a LAN
	// round trip to the primary.
	buckets, err := e13Drive(readers, refs, cfg.parallel, cfg.phase)
	if err != nil {
		return err
	}
	if len(buckets) < 6 {
		return fmt.Errorf("phase too short: %d buckets (raise -e13-seconds)", len(buckets))
	}
	report.SingleHomeBuckets = buckets
	report.SingleHomeReadsPerSec = tailMean(buckets)

	// Replicate to both readers; the home stays the lease-holding
	// primary.  Wait for the replica routes to reach the readers
	// through gossip before re-measuring.
	if err := home.Replicate(homeRef, epA, epB); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	deadline := time.Now().Add(50 * cfg.heartbeat)
	for {
		okA, err := e13LocalRead(readerA, refs[0])
		if err != nil {
			return err
		}
		okB, err := e13LocalRead(readerB, refs[1])
		if err != nil {
			return err
		}
		if okA && okB {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica routes did not reach the readers within %v", 50*cfg.heartbeat)
		}
		time.Sleep(cfg.heartbeat)
	}

	// Phase B — replicated: reads collapse to the local copies.
	buckets, err = e13Drive(readers, refs, cfg.parallel, cfg.phase)
	if err != nil {
		return err
	}
	if len(buckets) < 6 {
		return fmt.Errorf("phase too short: %d buckets (raise -e13-seconds)", len(buckets))
	}
	report.ReplicatedBuckets = buckets
	report.ReplicatedReadsPerSec = tailMean(buckets)
	report.ReadLift = report.ReplicatedReadsPerSec / report.SingleHomeReadsPerSec

	// Write-visibility coda: a write through a reader's proxy
	// serialises at the primary and must update every copy before it
	// acknowledges — both readers' very next reads see the new value.
	if _, err := readerA.CallOn(refs[0], "set", 1234); err != nil {
		return fmt.Errorf("write through replica proxy: %w", err)
	}
	report.WriteVisibleImmediately = true
	for i, r := range readers {
		got, err := r.CallOn(refs[i], "get")
		if err != nil {
			return err
		}
		if got != int64(1234) {
			report.WriteVisibleImmediately = false
			return fmt.Errorf("reader %d read %v immediately after the acked write, want 1234 (stale replica)", i, got)
		}
	}

	fmt.Printf("read replication, %d readers x %d callers over simulated LAN (heartbeat %v)\n\n",
		len(readers), cfg.parallel, cfg.heartbeat)
	fmt.Printf("  %-34s %12.0f reads/s\n", "single home (all reads remote)", report.SingleHomeReadsPerSec)
	fmt.Printf("  %-34s %12.0f reads/s  (%.1fx)\n", "replicated x3 (reads local)",
		report.ReplicatedReadsPerSec, report.ReadLift)
	fmt.Printf("  %-34s %12v\n", "write visible immediately", report.WriteVisibleImmediately)

	if report.ReadLift < cfg.minLift {
		return fmt.Errorf("read lift %.2fx below the %.1fx bar", report.ReadLift, cfg.minLift)
	}
	fmt.Printf("\nreplicated reads scale: %.1fx the single-home ceiling with 3 copies, "+
		"writes still serialise through the primary\n", report.ReadLift)

	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("machine-readable results written to %s\n", jsonPath)
	return nil
}
