package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rafda"
)

// ----- E14: tracing overhead + chaos flight-recorder audit -----

// e14Source is the observability workload: echo() is the pure
// round-trip the overhead arm hammers (no writes, so the traced and
// untraced arms compare nothing but the tracing plane itself), and
// bump()/read() reuse the E12 non-idempotent counter semantics so the
// chaos audit can cross-check exactly-once while it audits spans.
const e14Source = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int echo(int x) { return x; }
    int bump(int x) {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) { acc = acc + x; }
        n = n + acc;
        return n;
    }
    int read() { return n; }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// e14Config carries the -e14-* flag values.
type e14Config struct {
	rounds      int     // alternating overhead rounds per arm (0: audit only)
	calls       int     // echo calls per overhead round
	parallel    int     // concurrent caller goroutines
	maxOverhead float64 // tolerated traced-vs-untraced throughput loss
	seeds       string  // chaos audit fault-schedule seeds
	auditCalls  int     // acked bumps per audit seed
	dup         int     // per-mille duplicated frames
	drop        int     // per-mille swallowed frames
	kill        int     // per-mille kill-mid-flight
	traceSpans  int     // audit ring capacity per node
	pool        int
}

// E14NodeRing is one audited node's flight-recorder occupancy after a
// seed run — Emitted must stay within Capacity or the orphan audit
// would be reading a ring that already dropped history.
type E14NodeRing struct {
	Node     string `json:"node"`
	Spans    int    `json:"spans"`
	Capacity int    `json:"capacity"`
	Emitted  uint64 `json:"emitted"`
}

// E14SeedAudit is one chaos seed's trace-completeness audit.
type E14SeedAudit struct {
	Seed         uint64 `json:"seed"`
	AckedCalls   int64  `json:"acked_calls"`
	CounterValue int64  `json:"counter_value"`
	Expected     int64  `json:"expected_value"`
	Suppressed   uint64 `json:"duplicates_suppressed"`

	TotalSpans     int `json:"total_spans"`
	ClientRoots    int `json:"client_root_spans"`
	CrossNode      int `json:"traces_with_remote_span"`
	Orphans        int `json:"orphan_spans"`
	MigrationSpans int `json:"migration_spans"`
	DedupSpans     int `json:"dedup_spans"`
	FailoverSpans  int `json:"failover_spans"`

	Rings    []E14NodeRing `json:"rings"`
	Complete bool          `json:"complete"`
}

// E14Report is the top-level BENCH_E14.json document.  OverheadOK is
// the gate's key row: 1.0 when the traced arm's median throughput sits
// within MaxOverhead of the untraced arm's AND every chaos seed's span
// forest was complete and connected, else 0.0.
type E14Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	Parallel    int     `json:"parallelism"`
	Rounds      int     `json:"rounds"`
	Calls       int     `json:"calls_per_round"`
	MaxOverhead float64 `json:"max_overhead"`

	TracedCallsPerSec []float64 `json:"traced_calls_per_sec"`
	PlainCallsPerSec  []float64 `json:"untraced_calls_per_sec"`
	TracedMedian      float64   `json:"traced_median"`
	PlainMedian       float64   `json:"untraced_median"`
	TracedCPUPerCall  float64   `json:"traced_cpu_us_per_call"`
	PlainCPUPerCall   float64   `json:"untraced_cpu_us_per_call"`
	WallOverhead      float64   `json:"wall_overhead"`
	Overhead          float64   `json:"cpu_overhead"`

	OverheadOK float64 `json:"overhead_ok"`

	Audit []E14SeedAudit `json:"audit"`
}

// e14Span is the slice of internal/trace.Span's JSON shape the audit
// needs (IntrospectJSON "spans" output).
type e14Span struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Node   string `json:"node"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Err    string `json:"err"`
}

// e14Faults is the audit arm's chaos profile (the E12 schedule: dial
// handshakes exempt, everything after fair game).
func e14Faults(cfg e14Config, seed uint64) rafda.NetProfile {
	p := rafda.NetLAN
	p.Faults = &rafda.NetFaults{
		Seed:            seed,
		DupPerMille:     cfg.dup,
		DropPerMille:    cfg.drop,
		KillPerMille:    cfg.kill,
		FirstSafeWrites: 4,
	}
	return p
}

// e14Pair builds one measured driver/server deployment for the
// overhead arm — a clean simulated LAN, tracing on or off on BOTH
// sides — with the counter placed remotely and one instance made.
func e14Pair(cfg e14Config, prefix string, noTrace bool) (driver *rafda.Node, ref *rafda.Ref, cleanup func(), err error) {
	prog, err := rafda.CompileString(e14Source)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return nil, nil, nil, err
	}
	const steps = int64(1) << 40
	mk := func(name string) (*rafda.Node, error) {
		return tr.NewNode(rafda.NodeConfig{
			Name: prefix + name, Network: rafda.NetLAN, MaxSteps: steps,
			PoolSize: cfg.pool, NoTrace: noTrace,
		})
	}
	d, err := mk("driver")
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := mk("server")
	if err != nil {
		d.Close()
		return nil, nil, nil, err
	}
	cleanup = func() { d.Close(); s.Close() }
	if _, err = d.Serve("rrp", ""); err == nil {
		var ep string
		if ep, err = s.Serve("rrp", ""); err == nil {
			if err = d.PlaceClass("Counter", ep); err == nil {
				var made any
				if made, err = d.Call("Setup", "make"); err == nil {
					return d, made.(*rafda.Ref), cleanup, nil
				}
			}
		}
	}
	cleanup()
	return nil, nil, nil, err
}

// cpuNow reads the process's consumed CPU time (user+system).  Unlike
// wall clock, CPU time is immune to what the rest of the host is doing
// — on a contended runner it is the only stable base for a small-ratio
// comparison.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// e14Echo runs `calls` remote echo round-trips over `parallel`
// goroutines and reports the elapsed wall time, process-CPU time and
// heap allocation count.
func e14Echo(driver *rafda.Node, ref *rafda.Ref, parallel, calls int) (wall, cpu time.Duration, allocs uint64, err error) {
	var next atomic.Int64
	errs := make(chan error, parallel)
	var wg sync.WaitGroup
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	cpu0 := cpuNow()
	start := time.Now()
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(calls) {
				v, err := driver.CallOn(ref, "echo", 7)
				if err != nil {
					errs <- err
					return
				}
				if v.(int64) != 7 {
					errs <- fmt.Errorf("bad echo %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall = time.Since(start)
	cpu = cpuNow() - cpu0
	runtime.ReadMemStats(&ms1)
	select {
	case err := <-errs:
		return 0, 0, 0, err
	default:
	}
	return wall, cpu, ms1.Mallocs - ms0.Mallocs, nil
}

// median of a non-empty sample (mean of the middle pair when even).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// q25 is the lower quartile of a non-empty sample (the element a
// quarter of the way up the sorted order — for 5 rounds, the
// second-lowest).
func q25(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/4]
}

// e14Overhead measures the tracing plane's cost: the same remote echo
// workload against an always-on-tracing pair and a NoTrace pair, split
// into short slices interleaved A/B/A/B between the arms with the
// order flipping each slice.  The *gated* metric is CPU time per call
// (getrusage user+system): unlike wall clock it is immune to host
// contention and neighbour noise, and on a saturated server
// CPU-per-call IS the cost of leaving tracing on.  Two further
// defences keep the small ratio resolvable:
//
//   - the collector is off during measured slices (GC runs forced at
//     slice boundaries, outside every timing window, with each cycle's
//     lazy sweep also driven to completion there) — otherwise a
//     cycle's mark work lands in whichever arm's slice it fires in and
//     its background sweep bleeds into the next slice's process-wide
//     CPU reading, several percent of attribution noise per run;
//   - the gated ratio is the lower quartile of per-round CPU ratios,
//     each round's arms summed over its interleaved slices.  Kernel
//     CPU accounting is tick-granular (±a scheduler tick per readout),
//     so a single slice's ~15ms of CPU carries percent-scale
//     quantization noise — a round's few hundred ms pushes that below
//     2%.  Across rounds the remaining error is host contention, which
//     is strictly additive and epoch-correlated (a noisy neighbour can
//     pollute most rounds of one run, so a median doesn't escape it);
//     the lower quartile estimates the uncontended ratio instead.  A
//     real tracing regression raises every round's ratio uniformly, so
//     the quantile catches it just the same.
//
// Wall-clock throughput is reported alongside as the median of
// order-balanced slice-quad ratios (two opposite-order pairs summed
// before the ratio, cancelling any run-second advantage) — an A/A
// calibration still shows pair-identity wall noise on a busy 1-core
// host, so the wall ratio is informative while CPU is the gate.
func e14Overhead(cfg e14Config, report *E14Report) error {
	traced, tRef, tClean, err := e14Pair(cfg, "t-", false)
	if err != nil {
		return err
	}
	defer tClean()
	plain, pRef, pClean, err := e14Pair(cfg, "p-", true)
	if err != nil {
		return err
	}
	defer pClean()

	warm := cfg.calls / 10
	if warm < 50 {
		warm = 50
	}
	if _, _, _, err := e14Echo(traced, tRef, cfg.parallel, warm); err != nil {
		return err
	}
	if _, _, _, err := e14Echo(plain, pRef, cfg.parallel, warm); err != nil {
		return err
	}

	slice := cfg.calls / 16
	if slice < 200 {
		slice = 200
	}
	fmt.Printf("tracing overhead: %d echo calls/round in interleaved %d-call slices, p=%d, %d rounds\n\n",
		cfg.calls, slice, cfg.parallel, cfg.rounds)
	fmt.Printf("  %-6s %14s %14s %8s\n", "round", "traced c/s", "untraced c/s", "ratio")
	var wallQuads []float64 // one wall ratio per ABBA quad (two opposite-order pairs)
	var cpuRounds []float64 // one CPU ratio per round — the gated sample
	var tCPU, pCPU time.Duration
	var tAllocs, pAllocs uint64
	totalCalls := 0
	// Collector off while a slice is measured: GC runs only at the
	// forced points between slices, so no mark cycle's CPU lands inside
	// an arm's timing window.
	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)
	for r := 0; r < cfg.rounds; r++ {
		var tTime, pTime time.Duration
		var tCPURound, pCPURound time.Duration
		var tEls, pEls []time.Duration // per-slice wall times, index = slice ordinal
		for done, s := 0, 0; done < cfg.calls; done, s = done+slice, s+1 {
			// Two collections, not one: a cycle's sweep work is lazy and
			// runs in background (or on the next allocating goroutine) —
			// inside the following slice's CPU window, since getrusage is
			// process-wide.  Starting a second cycle forces the first one's
			// sweep to complete synchronously, here, outside every window.
			runtime.GC()
			runtime.GC()
			n := slice
			if cfg.calls-done < n {
				n = cfg.calls - done
			}
			arms := []struct {
				d      *rafda.Node
				ref    *rafda.Ref
				wall   *time.Duration
				cpu    *time.Duration
				allocs *uint64
			}{
				{traced, tRef, &tTime, &tCPURound, &tAllocs},
				{plain, pRef, &pTime, &pCPURound, &pAllocs},
			}
			if s%2 == 1 {
				arms[0], arms[1] = arms[1], arms[0]
			}
			var el [2]time.Duration
			for i, a := range arms {
				wall, cpu, allocs, err := e14Echo(a.d, a.ref, cfg.parallel, n)
				if err != nil {
					return err
				}
				el[i] = wall
				*a.wall += wall
				*a.cpu += cpu
				*a.allocs += allocs
			}
			if s%2 == 1 {
				el[0], el[1] = el[1], el[0]
			}
			tEls, pEls = append(tEls, el[0]), append(pEls, el[1])
		}
		totalCalls += cfg.calls
		tCPU += tCPURound
		pCPU += pCPURound
		cpuRounds = append(cpuRounds, tCPURound.Seconds()/pCPURound.Seconds())
		// ABBA quads: adjacent slices run the arms in opposite order, so
		// summing a slice with its neighbour before taking the ratio
		// cancels any run-second advantage (warm timers, just-exited
		// goroutines) that a single pair's ratio would carry as bias.
		for q := 0; q+1 < len(tEls); q += 2 {
			wallQuads = append(wallQuads,
				(pEls[q]+pEls[q+1]).Seconds()/(tEls[q]+tEls[q+1]).Seconds())
		}
		tCps := float64(cfg.calls) / tTime.Seconds()
		pCps := float64(cfg.calls) / pTime.Seconds()
		report.TracedCallsPerSec = append(report.TracedCallsPerSec, tCps)
		report.PlainCallsPerSec = append(report.PlainCallsPerSec, pCps)
		fmt.Printf("  %-6d %14.0f %14.0f %8.3f\n", r+1, tCps, pCps, tCps/pCps)
	}
	report.TracedMedian = median(report.TracedCallsPerSec)
	report.PlainMedian = median(report.PlainCallsPerSec)
	report.WallOverhead = 1 - median(wallQuads)
	report.TracedCPUPerCall = float64(tCPU.Microseconds()) / float64(totalCalls)
	report.PlainCPUPerCall = float64(pCPU.Microseconds()) / float64(totalCalls)
	report.Overhead = q25(cpuRounds) - 1
	fmt.Printf("\n  wall: median of %d order-balanced slice-quad ratios %.3f (traced median %.0f, untraced median %.0f calls/s)\n",
		len(wallQuads), median(wallQuads), report.TracedMedian, report.PlainMedian)
	fmt.Printf("  cpu:  traced %.1fµs/call vs untraced %.1fµs/call; lower quartile of %d round ratios: overhead %.2f%% (bound %.0f%%)\n",
		report.TracedCPUPerCall, report.PlainCPUPerCall, len(cpuRounds),
		100*report.Overhead, 100*cfg.maxOverhead)
	fmt.Printf("  heap: traced %.1f vs untraced %.1f allocs/call\n",
		float64(tAllocs)/float64(totalCalls), float64(pAllocs)/float64(totalCalls))
	if report.Overhead > cfg.maxOverhead {
		return fmt.Errorf("tracing overhead %.2f%% CPU/call exceeds the %.0f%% bound (traced %.1fµs vs untraced %.1fµs per call)",
			100*report.Overhead, 100*cfg.maxOverhead, report.TracedCPUPerCall, report.PlainCPUPerCall)
	}
	return nil
}

// e14NodeSpans pulls one node's full flight-recorder ring through the
// same introspection op rafdac uses, plus its ring occupancy.
func e14NodeSpans(n *rafda.Node) ([]e14Span, E14NodeRing, error) {
	var ring E14NodeRing
	out, err := n.IntrospectJSON("spans", "")
	if err != nil {
		return nil, ring, err
	}
	var spans []e14Span
	if err := json.Unmarshal([]byte(out), &spans); err != nil {
		return nil, ring, fmt.Errorf("bad spans payload: %w", err)
	}
	out, err = n.IntrospectJSON("metrics", "")
	if err != nil {
		return nil, ring, err
	}
	var m struct {
		Node  string `json:"node"`
		Trace *struct {
			Spans    int    `json:"spans"`
			Capacity int    `json:"capacity"`
			Emitted  uint64 `json:"emitted"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		return nil, ring, fmt.Errorf("bad metrics payload: %w", err)
	}
	if m.Trace == nil {
		return nil, ring, fmt.Errorf("%s: tracing reported disabled during the audit", m.Node)
	}
	ring = E14NodeRing{Node: m.Node, Spans: m.Trace.Spans, Capacity: m.Trace.Capacity, Emitted: m.Trace.Emitted}
	if ring.Emitted > uint64(ring.Capacity) {
		return nil, ring, fmt.Errorf("%s: ring overflowed (%d spans emitted into %d slots) — the orphan audit needs the whole history; raise -e14-trace-spans or lower -e14-audit-calls",
			m.Node, ring.Emitted, ring.Capacity)
	}
	return spans, ring, nil
}

// e14Audit runs one chaos seed and audits the flight recorders: under
// frame duplication/drop/kill AND a mid-run migration to a third node,
// every acked logical call must have left a complete, connected span
// tree across the union of the three rings — one error-free client
// root per acked call, a remote-side span on every such trace, and not
// one span whose parent is missing from the union.
func e14Audit(cfg e14Config, seed uint64) (E14SeedAudit, error) {
	row := E14SeedAudit{Seed: seed}

	prog, err := rafda.CompileString(e14Source)
	if err != nil {
		return row, err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return row, err
	}
	const steps = int64(1) << 40
	mk := func(name string) (*rafda.Node, error) {
		return tr.NewNode(rafda.NodeConfig{
			Name: name, Network: e14Faults(cfg, seed), MaxSteps: steps,
			PoolSize: cfg.pool, DedupWindow: 256, TraceSpans: cfg.traceSpans,
		})
	}
	driver, err := mk("driver")
	if err != nil {
		return row, err
	}
	defer driver.Close()
	server, err := mk("server")
	if err != nil {
		return row, err
	}
	defer server.Close()
	spare, err := mk("spare")
	if err != nil {
		return row, err
	}
	defer spare.Close()
	if _, err := driver.Serve("rrp", ""); err != nil {
		return row, err
	}
	epServer, err := server.Serve("rrp", "")
	if err != nil {
		return row, err
	}
	epSpare, err := spare.Serve("rrp", "")
	if err != nil {
		return row, err
	}

	if err := driver.PlaceClass("Counter", epServer); err != nil {
		return row, err
	}
	made, err := driver.Call("Setup", "make")
	if err != nil {
		return row, err
	}
	ref := made.(*rafda.Ref)

	// Fixed call budget (not a timed phase): the whole run must fit the
	// rings, or "no orphans" would be vacuously unverifiable.  Halfway
	// through, the host migrates the hot counter to the spare node while
	// the callers keep hammering — the migration legs, the forwarded
	// calls through the old home, and the proxy retargets all have to
	// land on the traces of the calls that rode them.
	// Audit parallelism caps at the E12 level: every caller on a shard
	// shares its multiplexed socket, so one killed frame fails all the
	// calls in flight on it — at p=64 on a single shard the per-attempt
	// blast radius outruns the tokened retry budget and a transient
	// kill can surface to the caller, which is a transport-sizing
	// artifact, not the tracing property under audit.
	par := cfg.parallel
	if par > 8 {
		par = 8
	}
	var next, acked atomic.Int64
	errs := make(chan error, par)
	var wg sync.WaitGroup
	var migErr error
	workDone := make(chan struct{}) // frees the trigger if callers die early
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		for acked.Load() < int64(cfg.auditCalls/2) {
			select {
			case <-workDone:
				return
			case <-time.After(time.Millisecond):
			}
		}
		migErr = driver.Migrate(ref, epSpare)
	}()
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(cfg.auditCalls) {
				if _, err := driver.CallOn(ref, "bump", 1); err != nil {
					errs <- err
					return
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	close(workDone)
	<-migDone
	select {
	case err := <-errs:
		return row, fmt.Errorf("caller saw an unrecovered error: %w", err)
	default:
	}
	if migErr != nil {
		return row, fmt.Errorf("mid-run migration: %w", migErr)
	}
	row.AckedCalls = acked.Load()

	v, err := driver.CallOn(ref, "read")
	if err != nil {
		return row, fmt.Errorf("final read: %w", err)
	}
	row.CounterValue = v.(int64)
	row.Expected = row.AckedCalls * bumpDelta
	if row.CounterValue != row.Expected {
		return row, fmt.Errorf("exactly-once violated under the audit: counter %d after %d acked calls (expected %d)",
			row.CounterValue, row.AckedCalls, row.Expected)
	}
	for _, n := range []*rafda.Node{driver, server, spare} {
		row.Suppressed += n.DedupStats().Suppressed()
	}
	if row.Suppressed == 0 {
		return row, fmt.Errorf("chaos never exercised the dedup plane (0 duplicates suppressed) — the audit proved nothing about retry traces")
	}

	// The quiesced rings, unioned, are the evidence.
	var spans []e14Span
	for _, n := range []*rafda.Node{driver, server, spare} {
		part, ring, err := e14NodeSpans(n)
		if err != nil {
			return row, err
		}
		row.Rings = append(row.Rings, ring)
		spans = append(spans, part...)
	}
	row.TotalSpans = len(spans)

	known := make(map[uint64]bool, len(spans))
	remote := make(map[uint64]bool) // traces with a span off the driver
	for _, s := range spans {
		known[s.ID] = true
		if s.Node != "driver" {
			remote[s.Trace] = true
		}
		switch s.Kind {
		case "migration":
			row.MigrationSpans++
		case "dedup":
			row.DedupSpans++
		case "failover":
			row.FailoverSpans++
		}
	}
	for _, s := range spans {
		if s.Parent != 0 && !known[s.Parent] {
			row.Orphans++
		}
	}
	if row.Orphans > 0 {
		return row, fmt.Errorf("%d orphan span(s): parents missing from the union of all three rings", row.Orphans)
	}
	for _, s := range spans {
		if s.Node == "driver" && s.Kind == "client" && s.Name == "bump" {
			if s.Err != "" {
				return row, fmt.Errorf("client span for an acked workload carries error %q", s.Err)
			}
			row.ClientRoots++
			if remote[s.Trace] {
				row.CrossNode++
			}
		}
	}
	if int64(row.ClientRoots) != row.AckedCalls {
		return row, fmt.Errorf("span accounting broken: %d acked calls left %d client root spans", row.AckedCalls, row.ClientRoots)
	}
	if row.CrossNode != row.ClientRoots {
		return row, fmt.Errorf("%d of %d acked traces never reached a remote-side span (the wire context was lost en route)",
			row.ClientRoots-row.CrossNode, row.ClientRoots)
	}
	if row.MigrationSpans == 0 {
		return row, fmt.Errorf("mid-run migration left no migration span in any ring")
	}
	if row.DedupSpans == 0 {
		return row, fmt.Errorf("%d suppressed duplicates left no dedup verdict span", row.Suppressed)
	}

	row.Complete = true
	return row, nil
}

// e14 proves the observability plane's two contracts at once: tracing
// is cheap enough to leave on (traced vs untraced median echo
// throughput within the overhead bound, alternating rounds), and it is
// complete under fire (seeded chaos with frame duplication/drop/kill
// plus a mid-run migration, after which every acked call's span tree
// is present and connected across the union of the nodes' bounded
// rings — zero orphans, no trace that lost the wire).  -e14-rounds 0
// skips the throughput arm for CI chaos jobs that only want the audit.
func e14(cfg e14Config, jsonPath string) error {
	report := E14Report{
		Experiment: "e14",
		Description: "tracing overhead + flight-recorder chaos audit: traced-vs-untraced echo medians within bound; " +
			"under dup/drop/kill chaos and a mid-run migration every acked call leaves a complete connected span tree",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Parallel:    cfg.parallel,
		Rounds:      cfg.rounds,
		Calls:       cfg.calls,
		MaxOverhead: cfg.maxOverhead,
	}

	if cfg.rounds > 0 {
		if err := e14Overhead(cfg, &report); err != nil {
			return err
		}
	} else {
		fmt.Println("overhead arm skipped (-e14-rounds 0): chaos trace audit only")
	}

	var seeds []uint64
	for _, s := range strings.Split(cfg.seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -e14-seeds entry %q: %w", s, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("empty -e14-seeds")
	}

	fmt.Printf("\nflight-recorder chaos audit: %d calls per seed (dup %d‰, drop %d‰, kill %d‰), mid-run migration, ring %d\n\n",
		cfg.auditCalls, cfg.dup, cfg.drop, cfg.kill, cfg.traceSpans)
	fmt.Printf("  %-6s %8s %8s %8s %9s %8s %6s %6s %5s  %s\n",
		"seed", "acked", "spans", "roots", "crossnode", "orphans", "migr", "dedup", "fail", "verdict")
	for _, seed := range seeds {
		row, err := e14Audit(cfg, seed)
		verdict := "complete"
		if err != nil {
			verdict = "FAILED: " + err.Error()
		}
		report.Audit = append(report.Audit, row)
		fmt.Printf("  %-6d %8d %8d %8d %9d %8d %6d %6d %5d  %s\n",
			row.Seed, row.AckedCalls, row.TotalSpans, row.ClientRoots, row.CrossNode,
			row.Orphans, row.MigrationSpans, row.DedupSpans, row.FailoverSpans, verdict)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	report.OverheadOK = 1.0
	fmt.Printf("\nall %d fault schedules left complete connected span trees; tracing stays on\n", len(seeds))

	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("machine-readable results written to %s\n", jsonPath)
	return nil
}
