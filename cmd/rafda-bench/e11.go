package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rafda/internal/netsim"
	"rafda/internal/transport"
	"rafda/internal/wire"
)

// ----- E11: pooled-transport saturation -----

// E11Result is one row of the machine-readable pooled-transport
// saturation record, tracked across PRs in BENCH_E11.json.
type E11Result struct {
	Network     string  `json:"network"`
	Pool        int     `json:"pool"`
	Parallelism int     `json:"parallelism"`
	Calls       int     `json:"calls"`
	CallsPerSec float64 `json:"calls_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// E11Report is the top-level BENCH_E11.json document.  Baseline is the
// pool=1 row — the E7 single-socket configuration — and CeilingLift is
// how far the best pool width raises the sim-LAN p=64 calls/s ceiling
// above it.
type E11Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	BaselineCallsPerSec float64 `json:"baseline_calls_per_sec"`
	BestCallsPerSec     float64 `json:"best_calls_per_sec"`
	BestPool            int     `json:"best_pool"`
	CeilingLift         float64 `json:"ceiling_lift"`

	Results []E11Result `json:"results"`
}

// e11Config carries the -e11-* flag values.
type e11Config struct {
	parallel int
	minLift  float64
}

// poolDriver adapts one endpoint of a sharded ClientCache to the Client
// interface the throughput harness drives.  The empty affinity key
// round-robins calls across the pool's shards — the saturation shape,
// where every shard carries load.
type poolDriver struct {
	cc *transport.ClientCache
	ep string
}

func (d poolDriver) Call(req *wire.Request) (*wire.Response, error) {
	return d.cc.CallKey(d.ep, "", req)
}

func (d poolDriver) Close() error { return nil }

// e11 measures the single-socket ceiling E7 left in place: one
// multiplexed connection pipelines any number of calls, but every frame
// funnels through that connection's writer/reader goroutine pair.  The
// experiment sweeps the per-endpoint pool width 1→8 at parallelism 64
// (echo workload, raw loopback and simulated LAN) and records how far
// sharding the connection lifts the calls/s ceiling over the pool=1
// baseline — the E7 single-socket configuration.  The lift needs real
// cores: on a 1-core host one writer pair already saturates the CPU, so
// -e11-min-lift is only enforced where it is set (the multicore CI
// job), and the JSON records gomaxprocs and num_cpu alongside the rows.
func e11(cfg e11Config, jsonPath string) error {
	echo := func(req *wire.Request) *wire.Response {
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KInt, Int: 42}}
	}
	networks := []struct {
		name    string
		profile netsim.Profile
	}{
		{"loopback", netsim.Profile{}},
		{"lan", netsim.Profile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9, Seed: 1}},
	}
	pools := []int{1, 2, 4, 8}
	report := E11Report{
		Experiment: "e11",
		Description: "pooled-transport saturation: sharded per-endpoint connection pools vs the " +
			"single-socket baseline, echo workload at parallelism 64",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	fmt.Printf("concurrent echo calls over a sharded connection pool (GOMAXPROCS=%d, %d CPUs)\n",
		report.GoMaxProcs, report.NumCPU)
	fmt.Printf("  %-9s %5s %3s %12s %12s\n", "network", "pool", "p", "calls/s", "ns/op")
	rate := map[string]float64{}
	for _, nw := range networks {
		tr := transport.NewRRP(transport.Options{Profile: nw.profile})
		srv, err := tr.Listen("", echo)
		if err != nil {
			return err
		}
		for _, pool := range pools {
			cc := transport.NewClientCachePool(transport.NewRegistry(tr), pool)
			bench := poolDriver{cc: cc, ep: srv.Endpoint()}
			calls := 6000
			if nw.name == "lan" && cfg.parallel == 1 {
				calls = 500
			}
			// Warm every shard (round-robin reaches all of them) and the
			// frame pools outside the measurement.
			if _, err := measureThroughput(bench, cfg.parallel, 64*pool); err != nil {
				cc.Close()
				srv.Close()
				return err
			}
			res, err := measureThroughput(bench, cfg.parallel, calls)
			cc.Close()
			if err != nil {
				srv.Close()
				return err
			}
			row := E11Result{
				Network:     nw.name,
				Pool:        pool,
				Parallelism: cfg.parallel,
				Calls:       calls,
				CallsPerSec: res.CallsPerSec,
				NsPerOp:     res.NsPerOp,
			}
			report.Results = append(report.Results, row)
			rate[fmt.Sprintf("%s/%d", nw.name, pool)] = res.CallsPerSec
			fmt.Printf("  %-9s %5d %3d %12.0f %12.0f\n",
				nw.name, pool, cfg.parallel, res.CallsPerSec, res.NsPerOp)
		}
		srv.Close()
	}

	report.BaselineCallsPerSec = rate["lan/1"]
	for _, pool := range pools {
		if r := rate[fmt.Sprintf("lan/%d", pool)]; r > report.BestCallsPerSec {
			report.BestCallsPerSec = r
			report.BestPool = pool
		}
	}
	if report.BaselineCallsPerSec > 0 {
		report.CeilingLift = report.BestCallsPerSec / report.BaselineCallsPerSec
	}
	fmt.Printf("\nsim-LAN ceiling at parallelism %d: pool=%d reaches %.0f calls/s, %.2fx the single-socket %.0f\n",
		cfg.parallel, report.BestPool, report.BestCallsPerSec, report.CeilingLift, report.BaselineCallsPerSec)
	if cfg.minLift > 0 && report.CeilingLift < cfg.minLift {
		return fmt.Errorf("pool lift %.2fx is below the %.2fx bar (gomaxprocs=%d, %d CPUs)",
			report.CeilingLift, cfg.minLift, report.GoMaxProcs, report.NumCPU)
	}

	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("machine-readable results written to %s\n", jsonPath)
	return nil
}
