package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rafda"
)

// ----- E12: exactly-once invocation under injected faults -----

// e12Source is the chaos workload: an E9-style hot counter whose bump
// is observably non-idempotent (each bump(1) adds exactly 100), plus a
// read so the final audit does not mutate.  A duplicate delivery that
// re-executes shows up as counter > 100 × acked calls; a lost
// execution shows up as counter < it.
const e12Source = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump(int x) {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) { acc = acc + x; }
        n = n + acc;
        return n;
    }
    int read() { return n; }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// bumpDelta is what one acked bump(1) must add to the counter — the
// unit the exactly-once audit is denominated in.
const bumpDelta = 100

// e12Config carries the -e12-* flag values.
type e12Config struct {
	phase    time.Duration
	parallel int
	seeds    string
	dup      int // per-mille duplicated frames
	drop     int // per-mille swallowed frames (link then torn down)
	kill     int // per-mille kill-mid-flight
	window   int // per-caller dedup window cap
	creates  int // phase-B chaos creates for the orphan audit
	pool     int
}

// E12NodeDedup is one node's exactly-once counters after a seed run.
type E12NodeDedup struct {
	Node             string `json:"node"`
	ReplayHits       uint64 `json:"replay_hits"`
	Parked           uint64 `json:"parked_duplicates"`
	StaleRejected    uint64 `json:"stale_rejected"`
	Retired          uint64 `json:"retired"`
	Adopted          uint64 `json:"adopted"`
	Entries          int64  `json:"entries"`
	EntriesHighWater int64  `json:"entries_high_water"`
	Windows          int64  `json:"windows"`
	MemoryBound      int64  `json:"memory_bound"`
}

// E12SeedResult is one row of the seed matrix.
type E12SeedResult struct {
	Seed         uint64 `json:"seed"`
	AckedCalls   int64  `json:"acked_calls"`
	CounterValue int64  `json:"counter_value"`
	Expected     int64  `json:"expected_value"`
	Suppressed   uint64 `json:"duplicates_suppressed"`
	Migrations   int    `json:"migrations_executed"`

	AckedCreates int `json:"acked_creates"`
	ExportDelta  int `json:"export_delta"`
	CreateDelta  int `json:"construct_delta"`

	Dedup       []E12NodeDedup `json:"dedup"`
	ExactlyOnce bool           `json:"exactly_once"`
}

// E12Report is the top-level BENCH_E12.json document.  ExactlyOnceOK
// is the gate's key row: the fraction of seeds whose audits all held
// (1.0 or the gate fails — there is no acceptable partial credit for
// duplicated side-effects).
type E12Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	Parallel     int    `json:"parallelism"`
	Phase        string `json:"phase"`
	DupPerMille  int    `json:"dup_per_mille"`
	DropPerMille int    `json:"drop_per_mille"`
	KillPerMille int    `json:"kill_per_mille"`
	WindowCap    int    `json:"dedup_window_cap"`

	ExactlyOnceOK float64 `json:"exactly_once_ok"`

	Seeds []E12SeedResult `json:"seeds"`
}

// e12Faults builds the per-seed chaos profile.  The first writes of
// every connection are exempt so dial-time traffic (and the short
// phase-B control exchanges) cannot be starved outright — chaos is
// meant to exercise retries, not to make the workload undeliverable.
func e12Faults(cfg e12Config, seed uint64) rafda.NetProfile {
	p := rafda.NetLAN
	p.Faults = &rafda.NetFaults{
		Seed:            seed,
		DupPerMille:     cfg.dup,
		DropPerMille:    cfg.drop,
		KillPerMille:    cfg.kill,
		FirstSafeWrites: 4,
	}
	return p
}

// e12Nodes builds a faulty two-node deployment (driver, server).
func e12Nodes(cfg e12Config, seed uint64) (*rafda.Node, *rafda.Node, string, error) {
	prog, err := rafda.CompileString(e12Source)
	if err != nil {
		return nil, nil, "", err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return nil, nil, "", err
	}
	const steps = int64(1) << 40
	mk := func(name string) (*rafda.Node, error) {
		return tr.NewNode(rafda.NodeConfig{
			Name: name, Network: e12Faults(cfg, seed), MaxSteps: steps,
			PoolSize: cfg.pool, DedupWindow: cfg.window,
		})
	}
	driver, err := mk("driver")
	if err != nil {
		return nil, nil, "", err
	}
	server, err := mk("server")
	if err != nil {
		driver.Close()
		return nil, nil, "", err
	}
	if _, err := driver.Serve("rrp", ""); err == nil {
		var epB string
		if epB, err = server.Serve("rrp", ""); err == nil {
			return driver, server, epB, nil
		}
	}
	driver.Close()
	server.Close()
	return nil, nil, "", err
}

// dedupRows snapshots both nodes' exactly-once counters and checks the
// bounded-memory contract: a node's live replay cache never exceeded
// (cap+1) entries per caller window it tracks (the +1 is the in-flight
// entry Begin admits before eviction runs).
func dedupRows(cfg e12Config, driver, server *rafda.Node) ([]E12NodeDedup, uint64, error) {
	var rows []E12NodeDedup
	var suppressed uint64
	for _, nn := range []struct {
		name string
		n    *rafda.Node
	}{{"driver", driver}, {"server", server}} {
		s := nn.n.DedupStats()
		bound := s.Windows * int64(cfg.window+1)
		rows = append(rows, E12NodeDedup{
			Node: nn.name, ReplayHits: s.ReplayHits, Parked: s.ParkedDuplicates,
			StaleRejected: s.StaleRejected, Retired: s.Retired, Adopted: s.Adopted,
			Entries: s.Entries, EntriesHighWater: s.EntriesHighWater,
			Windows: s.Windows, MemoryBound: bound,
		})
		suppressed += s.Suppressed()
		if s.EntriesHighWater > bound {
			return rows, suppressed, fmt.Errorf("%s dedup window unbounded: high water %d over bound %d (%d windows, cap %d)",
				nn.name, s.EntriesHighWater, bound, s.Windows, cfg.window)
		}
	}
	return rows, suppressed, nil
}

// e12Seed runs the full audit for one fault schedule.
func e12Seed(cfg e12Config, seed uint64) (E12SeedResult, error) {
	row := E12SeedResult{Seed: seed}

	// Phase A — invoke chaos with adaptive migration mid-flight: the
	// hot counter starts mis-placed on the server, parallel callers
	// bump it through a lossy, duplicating link, and the adapter moves
	// it to the driver while the chaos runs (the dedup window must
	// travel with it).  Every CallOn that returns is one acked logical
	// call; transport-level retries of the same call reuse its token.
	driver, server, epB, err := e12Nodes(cfg, seed)
	if err != nil {
		return row, err
	}
	defer driver.Close()
	defer server.Close()

	var migrations atomic.Int32
	acfg := rafda.AdaptConfig{
		Window: 75 * time.Millisecond, Threshold: 0.6, MinCalls: 24,
		Confirm: 2, Budget: 4,
		OnDecision: func(d rafda.AdaptDecision) {
			if d.Action == "migrate" && d.Executed {
				migrations.Add(1)
			}
		},
	}
	adA := driver.StartAdapter(acfg)
	adB := server.StartAdapter(acfg)

	if err := driver.PlaceClass("Counter", epB); err != nil {
		return row, err
	}
	made, err := driver.Call("Setup", "make")
	if err != nil {
		return row, err
	}
	ref := made.(*rafda.Ref)

	var acked atomic.Int64
	errs := make(chan error, cfg.parallel)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < cfg.parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := driver.CallOn(ref, "bump", 1); err != nil {
					errs <- err
					return
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(cfg.phase)
	close(stop)
	wg.Wait()
	adA.Stop()
	adB.Stop()
	select {
	case err := <-errs:
		// With tokened transport retries an exhausted call is an
		// ambiguous outcome the audit cannot score; at the configured
		// fault rates it should never happen.
		return row, fmt.Errorf("caller saw an unrecovered error (retries exhausted): %w", err)
	default:
	}
	row.AckedCalls = acked.Load()
	row.Migrations = int(migrations.Load())

	v, err := driver.CallOn(ref, "read")
	if err != nil {
		return row, fmt.Errorf("final read: %w", err)
	}
	row.CounterValue = v.(int64)
	row.Expected = row.AckedCalls * bumpDelta

	rows, suppressed, err := dedupRows(cfg, driver, server)
	row.Dedup = rows
	row.Suppressed = suppressed
	if err != nil {
		return row, err
	}

	if row.CounterValue != row.Expected {
		return row, fmt.Errorf("exactly-once violated: counter %d after %d acked calls (expected %d; %+d side-effects)",
			row.CounterValue, row.AckedCalls, row.Expected,
			(row.CounterValue-row.Expected)/bumpDelta)
	}
	if row.Suppressed == 0 {
		return row, fmt.Errorf("chaos never exercised the dedup plane (0 duplicates suppressed) — fault rates too low to prove anything")
	}
	if row.Migrations == 0 {
		return row, fmt.Errorf("adapter executed no migration under chaos (the window-travels-with-object leg went untested)")
	}

	// Phase B — create chaos on a fresh pair (no adapter, so the class
	// placement stays remote): every construction crosses the faulty
	// link as an OpCreate.  Before the exactly-once plane, a retried
	// create re-ran the constructor and stranded the first instance in
	// the export table; now a duplicate must replay the original GUID.
	// The audit is two side-effect meters at the server: exported
	// objects and executed constructions, both exactly one per acked
	// create.
	cDriver, cServer, cEpB, err := e12Nodes(cfg, seed+0x5eed)
	if err != nil {
		return row, err
	}
	defer cDriver.Close()
	defer cServer.Close()
	if err := cDriver.PlaceClass("Counter", cEpB); err != nil {
		return row, err
	}
	before := cServer.Stats()
	refs := make([]*rafda.Ref, 0, cfg.creates)
	for i := 0; i < cfg.creates; i++ {
		made, err := cDriver.Call("Setup", "make")
		if err != nil {
			return row, fmt.Errorf("chaos create %d: %w", i, err)
		}
		refs = append(refs, made.(*rafda.Ref))
	}
	after := cServer.Stats()
	row.AckedCreates = len(refs)
	row.ExportDelta = after.Exports - before.Exports
	row.CreateDelta = int(after.Creates - before.Creates)
	if row.ExportDelta != row.AckedCreates {
		return row, fmt.Errorf("stranded orphans: %d acked creates left %d exports (+%d orphaned instances)",
			row.AckedCreates, row.ExportDelta, row.ExportDelta-row.AckedCreates)
	}
	if row.CreateDelta != row.AckedCreates {
		return row, fmt.Errorf("constructor ran %d times for %d acked creates", row.CreateDelta, row.AckedCreates)
	}

	row.ExactlyOnce = true
	return row, nil
}

// e12 proves the exactly-once invocation contract under deterministic
// chaos: seeded per-connection fault schedules duplicate, swallow and
// kill frames mid-flight while the E9-style adaptive workload runs,
// and three audits must hold for every seed — the non-idempotent
// counter equals acked-calls × bumpDelta exactly (no duplicate and no
// lost side-effects, across an adapter-driven migration mid-chaos),
// chaos creates strand zero orphan instances (the old OpCreate retry
// exemption is gone), and the per-caller dedup windows stay within
// their configured memory bound.
func e12(cfg e12Config, jsonPath string) error {
	report := E12Report{
		Experiment: "e12",
		Description: "exactly-once invocation under injected faults: seeded frame duplication/drop/kill " +
			"chaos over the adaptive two-node workload; counter==acked-calls, zero create orphans, bounded windows",
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Parallel:     cfg.parallel,
		Phase:        cfg.phase.String(),
		DupPerMille:  cfg.dup,
		DropPerMille: cfg.drop,
		KillPerMille: cfg.kill,
		WindowCap:    cfg.window,
	}
	var seeds []uint64
	for _, s := range strings.Split(cfg.seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -e12-seeds entry %q: %w", s, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("empty -e12-seeds")
	}

	fmt.Printf("injected chaos (dup %d‰, drop %d‰, kill %d‰ per frame), %d callers, %v per seed, window cap %d\n\n",
		cfg.dup, cfg.drop, cfg.kill, cfg.parallel, cfg.phase, cfg.window)
	fmt.Printf("  %-6s %10s %12s %10s %6s %8s %8s %7s  %s\n",
		"seed", "acked", "counter", "suppressed", "migr", "creates", "exports", "constr", "verdict")
	ok := 0
	for _, seed := range seeds {
		row, err := e12Seed(cfg, seed)
		verdict := "exactly-once"
		if err != nil {
			verdict = "FAILED: " + err.Error()
		} else {
			ok++
		}
		report.Seeds = append(report.Seeds, row)
		fmt.Printf("  %-6d %10d %12d %10d %6d %8d %8d %7d  %s\n",
			row.Seed, row.AckedCalls, row.CounterValue, row.Suppressed,
			row.Migrations, row.AckedCreates, row.ExportDelta, row.CreateDelta, verdict)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	report.ExactlyOnceOK = float64(ok) / float64(len(seeds))
	var suppressed uint64
	for _, r := range report.Seeds {
		suppressed += r.Suppressed
	}
	fmt.Printf("\nall %d fault schedules held the contract: %d duplicate deliveries suppressed, zero duplicate side-effects, zero orphans\n",
		len(seeds), suppressed)

	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("machine-readable results written to %s\n", jsonPath)
	return nil
}
