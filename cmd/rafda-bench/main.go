// Command rafda-bench regenerates the paper's figures and claims as
// printed tables (the same experiments bench_test.go measures with
// testing.B, in report form):
//
//	rafda-bench -exp e1   Figures 2-5: transformed listings for class X
//	rafda-bench -exp e2   §2.4 transformability over the JDK-like corpus
//	rafda-bench -exp e3   Figure 1 scenario: local vs distributed
//	rafda-bench -exp e4   §3 wrapper-vs-transformation overhead
//	rafda-bench -exp e5   proxy protocol comparison
//	rafda-bench -exp e6   §4 dynamic redistribution
//	rafda-bench -exp e7   RRP concurrency throughput (writes BENCH_E7.json)
//	rafda-bench -exp e8   intra-node parallelism: sharded VM locking vs the
//	                      coarse-lock baseline (writes BENCH_E8.json)
//	rafda-bench -exp e9   adaptive placement: a mis-placed hot object is
//	                      migrated home by the telemetry-driven engine with
//	                      zero manual calls (writes BENCH_E9.json)
//	rafda-bench -exp e10  cluster coordination: a 3-node cluster converges a
//	                      mis-placed hot object via a multi-hop migration —
//	                      proposed by a node that neither hosts nor calls it
//	                      — with zero manual calls (writes BENCH_E10.json)
//	rafda-bench -exp e11  pooled-transport saturation: per-endpoint pool
//	                      width 1→8 at parallelism 64 vs the single-socket
//	                      ceiling (writes BENCH_E11.json)
//	rafda-bench -exp e12  exactly-once under injected faults: seeded frame
//	                      duplication/drop/kill chaos over the adaptive
//	                      workload; counter == acked calls, zero create
//	                      orphans, bounded windows (writes BENCH_E12.json)
//	rafda-bench -exp e13  read replication: a read-hot object replicated to
//	                      its two caller nodes; reads route to the local
//	                      copies while writes serialise through the
//	                      lease-holding primary (writes BENCH_E13.json)
//	rafda-bench -exp e14  tracing overhead bound + chaos trace audit
//	                      (writes BENCH_E14.json)
//	rafda-bench -exp e15  open-loop latency SLO: Poisson arrivals over a
//	                      Zipf object population with per-tenant deadlined
//	                      calls, node churn + link degradation mid-run;
//	                      exact clean-phase p50/p99/p999 per tenant vs the
//	                      configured SLO (writes BENCH_E15.json)
//	rafda-bench -exp all  everything
//
// The -adapt-* flags tune e9's engine (window, threshold, min calls,
// confirm windows, migration budget); the -e10-* flags tune e10's
// cluster (heartbeat, phase length, parallelism, acceptance ratio);
// the -e12-* flags tune e12's fault schedules (seed matrix, per-mille
// rates, phase length, dedup window cap); the -e13-* flags tune e13's
// replication run (heartbeat, phase length, per-reader parallelism,
// acceptance lift); the -e15-* flags tune e15's open-loop run (arrival
// rate, phase lengths, object/tenant counts, Zipf skew, per-call
// deadline, SLO bar); -pool overrides the connection pool width of
// e9/e10/e12/e13's nodes.
//
// -gate switches to the CI perf-regression comparator instead of
// running experiments: it compares freshly generated records (in
// -gate-fresh) against the committed BENCH_*.json (in -gate-committed)
// and exits non-zero when an experiment's key row regressed more than
// -gate-tolerance (the stable tiers e7/e11/e13/e14 are always held to
// at most 20%):
//
//	rafda-bench -gate e7,e9,e10,e11,e12,e13,e14,e15 -gate-fresh .gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rafda"
	"rafda/internal/corpus"
	"rafda/internal/minijava"
	"rafda/internal/netsim"
	"rafda/internal/node"
	"rafda/internal/transform"
	"rafda/internal/transport"
	"rafda/internal/vm"
	"rafda/internal/wire"
	"rafda/internal/wrapper"
)

const figureXSource = `
class Y {
    static int K = 17;
    Y() {}
    int n(long j) { return (int) j + 1; }
}
class Z {
    int seed;
    Z(int seed) { this.seed = seed; }
    int q(int i) { return seed + i; }
}
class X {
    private Y y;
    X(Y y) { this.y = y; }
    protected int m(long j) { return y.n(j); }
    static final Z z = new Z(Y.K);
    static int p(int i) { return z.q(i); }
}
class Main {
    static void main() {
        X x = new X(new Y());
        sys.System.println("m=" + x.m(41));
        sys.System.println("p=" + X.p(3));
    }
}`

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e15 or all)")
	e7json := flag.String("e7json", "BENCH_E7.json", "path for e7's machine-readable results (empty to skip)")
	e8json := flag.String("e8json", "BENCH_E8.json", "path for e8's machine-readable results (empty to skip)")
	e9json := flag.String("e9json", "BENCH_E9.json", "path for e9's machine-readable results (empty to skip)")
	e10json := flag.String("e10json", "BENCH_E10.json", "path for e10's machine-readable results (empty to skip)")
	e11json := flag.String("e11json", "BENCH_E11.json", "path for e11's machine-readable results (empty to skip)")
	e12json := flag.String("e12json", "BENCH_E12.json", "path for e12's machine-readable results (empty to skip)")
	e13json := flag.String("e13json", "BENCH_E13.json", "path for e13's machine-readable results (empty to skip)")
	e14json := flag.String("e14json", "BENCH_E14.json", "path for e14's machine-readable results (empty to skip)")
	e15json := flag.String("e15json", "BENCH_E15.json", "path for e15's machine-readable results (empty to skip)")
	pool := flag.Int("pool", 0, "connection pool width of e9/e10's nodes (0: GOMAXPROCS, capped at 8)")
	gate := flag.String("gate", "", "run the perf-regression gate over these experiments (e.g. \"e7,e9,e10,e11\") instead of benchmarks")
	gateCommitted := flag.String("gate-committed", ".", "directory holding the committed BENCH_*.json records")
	gateFresh := flag.String("gate-fresh", ".gate", "directory holding the freshly generated BENCH_*.json records")
	gateTol := flag.Float64("gate-tolerance", 0.30, "fractional regression of a key row the gate tolerates")
	e9cfg := e9Config{}
	flag.DurationVar(&e9cfg.window, "adapt-window", 75*time.Millisecond, "e9: adapter evaluation window")
	flag.Float64Var(&e9cfg.threshold, "adapt-threshold", 0.6, "e9: dominant-caller share needed to act")
	flag.IntVar(&e9cfg.minCalls, "adapt-min-calls", 24, "e9: minimum calls per window before a rule fires")
	flag.IntVar(&e9cfg.confirm, "adapt-confirm", 2, "e9: consecutive windows a proposal must recur")
	flag.IntVar(&e9cfg.budget, "adapt-budget", 2, "e9: migration budget per object per budget horizon")
	flag.DurationVar(&e9cfg.phase, "e9-seconds", 3*time.Second, "e9: duration of each measured phase")
	flag.IntVar(&e9cfg.parallel, "e9-parallel", 8, "e9: concurrent caller goroutines")
	flag.Float64Var(&e9cfg.minRatio, "e9-min-ratio", 0.8, "e9: required converged/optimal throughput ratio")
	e10cfg := e10Config{}
	flag.DurationVar(&e10cfg.heartbeat, "e10-heartbeat", 50*time.Millisecond, "e10: cluster gossip period")
	flag.DurationVar(&e10cfg.phase, "e10-seconds", 3*time.Second, "e10: duration of each measured phase")
	flag.IntVar(&e10cfg.parallel, "e10-parallel", 8, "e10: concurrent caller goroutines")
	flag.Float64Var(&e10cfg.minRatio, "e10-min-ratio", 0.8, "e10: required converged/optimal throughput ratio")
	e11cfg := e11Config{}
	flag.IntVar(&e11cfg.parallel, "e11-parallel", 64, "e11: concurrent caller goroutines")
	flag.Float64Var(&e11cfg.minLift, "e11-min-lift", 0, "e11: required pooled/single-socket calls/s lift (0: report only; needs real cores)")
	e12cfg := e12Config{}
	flag.DurationVar(&e12cfg.phase, "e12-seconds", 3*time.Second, "e12: invoke-chaos duration per seed")
	flag.IntVar(&e12cfg.parallel, "e12-parallel", 8, "e12: concurrent caller goroutines")
	flag.StringVar(&e12cfg.seeds, "e12-seeds", "1,2,3", "e12: comma-separated fault-schedule seeds")
	flag.IntVar(&e12cfg.dup, "e12-dup-permille", 30, "e12: per-mille frames delivered twice")
	flag.IntVar(&e12cfg.drop, "e12-drop-permille", 3, "e12: per-mille frames swallowed (link then torn down)")
	flag.IntVar(&e12cfg.kill, "e12-kill-permille", 3, "e12: per-mille frames killed mid-flight")
	flag.IntVar(&e12cfg.window, "e12-window", 256, "e12: per-caller dedup window cap under audit")
	flag.IntVar(&e12cfg.creates, "e12-creates", 150, "e12: phase-B chaos creates for the orphan audit")
	e13cfg := e13Config{}
	flag.DurationVar(&e13cfg.heartbeat, "e13-heartbeat", 50*time.Millisecond, "e13: cluster gossip period")
	flag.DurationVar(&e13cfg.phase, "e13-seconds", 3*time.Second, "e13: duration of each measured phase")
	flag.IntVar(&e13cfg.parallel, "e13-parallel", 4, "e13: concurrent caller goroutines per reader node")
	flag.Float64Var(&e13cfg.minLift, "e13-min-lift", 2.0, "e13: required replicated/single-home reads/s lift")
	e14cfg := e14Config{}
	flag.IntVar(&e14cfg.rounds, "e14-rounds", 5, "e14: alternating overhead rounds per arm (0: chaos trace audit only)")
	flag.IntVar(&e14cfg.calls, "e14-calls", 12000, "e14: echo calls per overhead round")
	flag.IntVar(&e14cfg.parallel, "e14-parallel", 64, "e14: concurrent caller goroutines")
	flag.Float64Var(&e14cfg.maxOverhead, "e14-max-overhead", 0.05, "e14: tolerated traced-vs-untraced throughput loss fraction")
	flag.StringVar(&e14cfg.seeds, "e14-seeds", "1,2", "e14: comma-separated audit fault-schedule seeds")
	flag.IntVar(&e14cfg.auditCalls, "e14-audit-calls", 1200, "e14: acked calls per audit seed (must fit the span ring)")
	flag.IntVar(&e14cfg.dup, "e14-dup-permille", 30, "e14: per-mille frames delivered twice during the audit")
	flag.IntVar(&e14cfg.drop, "e14-drop-permille", 3, "e14: per-mille frames swallowed during the audit")
	flag.IntVar(&e14cfg.kill, "e14-kill-permille", 3, "e14: per-mille frames killed mid-flight during the audit")
	flag.IntVar(&e14cfg.traceSpans, "e14-trace-spans", 1<<15, "e14: per-node flight-recorder ring capacity under audit")
	e15cfg := e15Config{}
	flag.Float64Var(&e15cfg.rate, "e15-rate", 1200, "e15: offered open-loop arrival rate, calls/s")
	flag.DurationVar(&e15cfg.warm, "e15-warm", 2*time.Second, "e15: warm (clean) phase length")
	flag.DurationVar(&e15cfg.churn, "e15-churn", 1500*time.Millisecond, "e15: churn window length (node death + link degradation)")
	flag.DurationVar(&e15cfg.recover, "e15-recover", 2*time.Second, "e15: recovery (clean) phase length")
	flag.IntVar(&e15cfg.objects, "e15-objects", 2000, "e15: object population size")
	flag.IntVar(&e15cfg.tenants, "e15-tenants", 20, "e15: tenant identities cycling through arrivals")
	flag.Float64Var(&e15cfg.zipfS, "e15-zipf", 1.1, "e15: Zipf skew of object popularity (>1)")
	flag.Uint64Var(&e15cfg.seed, "e15-seed", 1, "e15: arrival/popularity schedule seed")
	flag.DurationVar(&e15cfg.deadline, "e15-deadline", 250*time.Millisecond, "e15: per-call wire deadline budget")
	flag.DurationVar(&e15cfg.sloP99, "e15-slo-p99", 100*time.Millisecond, "e15: per-tenant clean-phase p99 SLO bar")
	flag.Float64Var(&e15cfg.maxErr, "e15-max-err", 0.01, "e15: tolerated clean-phase error fraction")
	flag.StringVar(&e15cfg.arm, "e15-arm", "both", "e15: arm(s) to run: main (churn/SLO), shed (proactive shedding at saturation), or both")
	flag.Float64Var(&e15cfg.shedFactor, "e15-shed-factor", 3.0, "e15: shed-arm offered load as a multiple of measured capacity (the gate needs >= 3)")
	flag.Parse()
	if *gate != "" {
		if err := runGate(strings.Split(*gate, ","), *gateCommitted, *gateFresh, *gateTol); err != nil {
			fmt.Fprintf(os.Stderr, "gate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	e9cfg.pool = *pool
	e10cfg.pool = *pool
	e12cfg.pool = *pool
	e13cfg.pool = *pool
	e14cfg.pool = *pool
	run := func(id string, f func() error) {
		if *exp != "all" && *exp != id {
			return
		}
		fmt.Printf("\n================ %s ================\n", strings.ToUpper(id))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
	run("e1", e1)
	run("e2", e2)
	run("e3", e3)
	run("e4", e4)
	run("e5", e5)
	run("e6", e6)
	run("e7", func() error { return e7(*e7json) })
	run("e8", func() error { return e8(*e8json) })
	run("e9", func() error { return e9(e9cfg, *e9json) })
	run("e10", func() error { return e10(e10cfg, *e10json) })
	run("e11", func() error { return e11(e11cfg, *e11json) })
	run("e12", func() error { return e12(e12cfg, *e12json) })
	run("e13", func() error { return e13(e13cfg, *e13json) })
	run("e14", func() error { return e14(e14cfg, *e14json) })
	run("e15", func() error { return e15(e15cfg, *e15json) })
}

// e1 prints the generated family for the paper's Figure 2 class X,
// reproducing the listings of Figures 3, 4 and 5.
func e1() error {
	prog, err := rafda.CompileString(figureXSource)
	if err != nil {
		return err
	}
	tr, err := prog.Transform(rafda.WithProtocols("soap", "rrp"))
	if err != nil {
		return err
	}
	tp := tr.Program()
	fmt.Println("Figure 3 — instance members transformation:")
	for _, c := range []string{"X_O_Int", "X_O_Local", "X_O_Proxy_soap"} {
		txt, err := tp.Disassemble(c, false)
		if err != nil {
			return err
		}
		fmt.Println(txt)
	}
	fmt.Println("Figure 4 — static members transformation:")
	for _, c := range []string{"X_C_Int", "X_C_Local", "X_C_Proxy_rrp"} {
		txt, err := tp.Disassemble(c, false)
		if err != nil {
			return err
		}
		fmt.Println(txt)
	}
	fmt.Println("Figure 5 — factories:")
	for _, c := range []string{"X_O_Factory", "X_C_Factory"} {
		txt, err := tp.Disassemble(c, false)
		if err != nil {
			return err
		}
		fmt.Println(txt)
	}
	return nil
}

// e2 reproduces §2.4: the transformability statistic over the 8,200
// class JDK-like corpus, plus the native-density sensitivity the paper
// predicts.
func e2() error {
	prog := corpus.Generate(corpus.JDKLike())
	a := transform.Analyze(prog)
	fmt.Println("paper: \"About 40% of the 8,200 classes and interfaces in JDK 1.4.1 cannot be transformed.\"")
	fmt.Println()
	fmt.Print(a.Report())

	fmt.Println("\nsensitivity to native-method density (paper: \"this percentage would increase\"):")
	fmt.Println("  core-native/1000   non-transformable")
	for _, nat := range []int{50, 150, 300, 500} {
		p := corpus.JDKLike()
		p.Classes = 2000
		p.CoreNativeFrac = nat
		pct := transform.Analyze(corpus.Generate(p)).Stats().Percent()
		fmt.Printf("  %16d   %6.1f%%\n", nat, pct)
	}
	return nil
}

const figure1Bench = `
class C {
    int state;
    C(int s) { this.state = s; }
    int bump() { state = state + 1; return state; }
}
class A {
    C c;
    A(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class Setup {
    static A make() { return new A(new C(0)); }
}
class Main { static void main() {} }`

func timeCalls(n int, f func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// e3 reproduces the Figure 1 scenario: the same interaction measured in
// each deployment.
func e3() error {
	const iters = 300
	fmt.Println("Figure 1 scenario: A and B share C; one use() = one shared-instance interaction")
	fmt.Println("  deployment            per-call")

	// Original, untransformed.
	{
		prog, err := minijava.Compile(figure1Bench)
		if err != nil {
			return err
		}
		machine := vm.MustNew(prog)
		a, err := machine.Invoke("Setup", "make", vm.Value{}, nil)
		if err != nil {
			return err
		}
		d, err := timeCalls(iters, func() error {
			_, err := machine.Invoke(a.O.ClassName(), "use", a, nil)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-20s  %10v\n", "original", d.Round(time.Nanosecond))
	}

	// Transformed, every placement.
	for _, mode := range []string{"local", "inproc", "rrp", "soap", "json"} {
		prog, err := rafda.CompileString(figure1Bench)
		if err != nil {
			return err
		}
		tr, err := prog.Transform(rafda.WithProtocols("inproc", "rrp", "soap", "json"))
		if err != nil {
			return err
		}
		client, err := tr.NewNode(rafda.NodeConfig{Name: "client"})
		if err != nil {
			return err
		}
		var server *rafda.Node
		if mode != "local" {
			server, err = tr.NewNode(rafda.NodeConfig{Name: "server"})
			if err != nil {
				return err
			}
			ep, err := server.Serve(mode, "")
			if err != nil {
				return err
			}
			if _, err := client.Serve(mode, ""); err != nil {
				return err
			}
			if err := client.PlaceClass("C", ep); err != nil {
				return err
			}
		}
		aref, err := client.Call("Setup", "make")
		if err != nil {
			return err
		}
		ref := aref.(*rafda.Ref)
		d, err := timeCalls(iters, func() error {
			_, err := client.CallOn(ref, "use")
			return err
		})
		if err != nil {
			return err
		}
		label := "transformed-" + mode
		if mode != "local" {
			label = "C remote via " + mode
		}
		fmt.Printf("  %-20s  %10v\n", label, d.Round(time.Nanosecond))
		client.Close()
		if server != nil {
			server.Close()
		}
	}
	fmt.Println("\nsemantic equivalence: verified by the test suite (identical output in every deployment)")
	return nil
}

const hotLoopSource = `
class Hot {
    int v;
    Hot(int v) { this.v = v; }
    int step(int x) { v = v + x; return v; }
}
class Driver {
    static int run(int n) {
        Hot h = new Hot(0);
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            acc = h.step(1);
        }
        return acc;
    }
}
class Main { static void main() {} }`

// e4 reproduces §3: interposition overhead of the RAFDA transformation
// vs the wrapper-per-object baseline.
func e4() error {
	const loop = 1000
	const reps = 50
	measure := func(machine *vm.VM, class string) (time.Duration, error) {
		args := []vm.Value{vm.IntV(loop)}
		return timeCalls(reps, func() error {
			res, err := machine.Invoke(class, "run", vm.Value{}, args)
			if err == nil && res.I != loop {
				return fmt.Errorf("bad result %d", res.I)
			}
			return err
		})
	}

	prog1, err := minijava.Compile(hotLoopSource)
	if err != nil {
		return err
	}
	orig, err := measure(vm.MustNew(prog1), "Driver")
	if err != nil {
		return err
	}

	prog2, err := minijava.Compile(hotLoopSource)
	if err != nil {
		return err
	}
	res, err := transform.Transform(prog2, transform.Options{Protocols: []string{"rrp"}})
	if err != nil {
		return err
	}
	m2 := vm.MustNew(res.Program)
	transform.BindLocal(m2, res)
	rafdaT, err := measure(m2, transform.CFactory("Driver"))
	if err != nil {
		return err
	}

	prog3, err := minijava.Compile(hotLoopSource)
	if err != nil {
		return err
	}
	wres, err := wrapper.Transform(prog3)
	if err != nil {
		return err
	}
	wrapT, err := measure(vm.MustNew(wres.Program), "Driver")
	if err != nil {
		return err
	}

	fmt.Printf("workload: %d method calls + field updates per run (§3 comparison)\n\n", loop)
	fmt.Printf("  %-22s %12s %10s\n", "variant", "per-run", "vs orig")
	fmt.Printf("  %-22s %12v %9.2fx\n", "original", orig.Round(time.Microsecond), 1.0)
	fmt.Printf("  %-22s %12v %9.2fx\n", "rafda (transformed)", rafdaT.Round(time.Microsecond), float64(rafdaT)/float64(orig))
	fmt.Printf("  %-22s %12v %9.2fx\n", "wrapper baseline", wrapT.Round(time.Microsecond), float64(wrapT)/float64(orig))
	fmt.Printf("\npaper: wrappers are \"much simpler ... significantly greater overhead\": wrapper/rafda = %.2fx\n",
		float64(wrapT)/float64(rafdaT))
	return nil
}

const echoSource = `
class EchoSvc {
    string echo(string s) { return s; }
    int add(int a, int b) { return a + b; }
}
class Setup {
    static EchoSvc make() { return new EchoSvc(); }
}
class Main { static void main() {} }`

// e5 compares the proxy protocol families on remote calls.
func e5() error {
	const iters = 200
	fmt.Println("remote call cost by proxy protocol (loopback; E5 in bench_test.go adds WAN)")
	fmt.Printf("  %-8s %12s %14s %14s\n", "proto", "add(i,i)", "echo 1KiB", "echo 16KiB")
	for _, proto := range []string{"inproc", "rrp", "json", "soap"} {
		prog, err := rafda.CompileString(echoSource)
		if err != nil {
			return err
		}
		tr, err := prog.Transform(rafda.WithProtocols("inproc", "rrp", "soap", "json"))
		if err != nil {
			return err
		}
		server, err := tr.NewNode(rafda.NodeConfig{Name: "server"})
		if err != nil {
			return err
		}
		ep, err := server.Serve(proto, "")
		if err != nil {
			return err
		}
		client, err := tr.NewNode(rafda.NodeConfig{Name: "client"})
		if err != nil {
			return err
		}
		if _, err := client.Serve(proto, ""); err != nil {
			return err
		}
		if err := client.PlaceClass("EchoSvc", ep); err != nil {
			return err
		}
		svc, err := client.Call("Setup", "make")
		if err != nil {
			return err
		}
		ref := svc.(*rafda.Ref)

		add, err := timeCalls(iters, func() error {
			_, err := client.CallOn(ref, "add", 1, 2)
			return err
		})
		if err != nil {
			return err
		}
		kb := strings.Repeat("x", 1024)
		e1k, err := timeCalls(iters, func() error {
			_, err := client.CallOn(ref, "echo", kb)
			return err
		})
		if err != nil {
			return err
		}
		kb16 := strings.Repeat("x", 16*1024)
		e16k, err := timeCalls(iters/4, func() error {
			_, err := client.CallOn(ref, "echo", kb16)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s %12v %14v %14v\n", proto,
			add.Round(time.Microsecond), e1k.Round(time.Microsecond), e16k.Round(time.Microsecond))
		client.Close()
		server.Close()
	}
	return nil
}

// e6 reproduces §4's dynamic reconfiguration: policy flips and live
// object migration.
func e6() error {
	src := `
class Bag {
    int a; int b; int c;
    Bag(int a) { this.a = a; this.b = a * 2; this.c = a * 3; }
    int sum() { return a + b + c; }
}
class Holder {
    static Bag held = new Bag(1);
    static int poke() { return held.sum(); }
}
class Main { static void main() {} }`
	prog, err := rafda.CompileString(src)
	if err != nil {
		return err
	}
	tr, err := prog.Transform()
	if err != nil {
		return err
	}
	nodeA, err := tr.NewNode(rafda.NodeConfig{Name: "a"})
	if err != nil {
		return err
	}
	defer nodeA.Close()
	nodeB, err := tr.NewNode(rafda.NodeConfig{Name: "b"})
	if err != nil {
		return err
	}
	defer nodeB.Close()
	epA, err := nodeA.Serve("rrp", "")
	if err != nil {
		return err
	}
	epB, err := nodeB.Serve("rrp", "")
	if err != nil {
		return err
	}

	before, err := timeCalls(200, func() error {
		_, err := nodeA.Call("Holder", "poke")
		return err
	})
	if err != nil {
		return err
	}

	href, err := nodeA.ReadStatic("Holder", "held")
	if err != nil {
		return err
	}
	ref := href.(*rafda.Ref)
	migStart := time.Now()
	if err := nodeA.Migrate(ref, epB); err != nil {
		return err
	}
	migOut := time.Since(migStart)

	after, err := timeCalls(200, func() error {
		_, err := nodeA.Call("Holder", "poke")
		return err
	})
	if err != nil {
		return err
	}

	migStart = time.Now()
	if err := nodeA.Migrate(ref, epA); err != nil {
		return err
	}
	migBack := time.Since(migStart)
	restored, err := timeCalls(200, func() error {
		_, err := nodeA.Call("Holder", "poke")
		return err
	})
	if err != nil {
		return err
	}

	fmt.Println("live object migration (Figure 1's Cp substitution on a running object):")
	fmt.Printf("  %-34s %12v\n", "per-call, object local", before.Round(time.Microsecond))
	fmt.Printf("  %-34s %12v\n", "migrate out (switch-over)", migOut.Round(time.Microsecond))
	fmt.Printf("  %-34s %12v\n", "per-call, object remote", after.Round(time.Microsecond))
	fmt.Printf("  %-34s %12v\n", "migrate back (via home pull-back)", migBack.Round(time.Microsecond))
	fmt.Printf("  %-34s %12v\n", "per-call, after return", restored.Round(time.Microsecond))
	fmt.Printf("\nmigrations seen: nodeB in=%d, nodeA in=%d; state preserved throughout (sum stayed 6)\n",
		nodeB.Stats().MigrationsIn, nodeA.Stats().MigrationsIn)
	return nil
}

// E7Result is one row of the machine-readable concurrency-throughput
// record, tracked across PRs in BENCH_E7.json.
type E7Result struct {
	Protocol    string  `json:"protocol"`
	Network     string  `json:"network"`
	Mode        string  `json:"mode"`
	Parallelism int     `json:"parallelism"`
	Calls       int     `json:"calls"`
	CallsPerSec float64 `json:"calls_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// E7Report is the top-level BENCH_E7.json document.
type E7Report struct {
	Experiment  string     `json:"experiment"`
	Description string     `json:"description"`
	Timestamp   string     `json:"timestamp"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Results     []E7Result `json:"results"`
}

// measureThroughput runs `calls` echo calls spread over `parallel`
// goroutines against client and reports aggregate throughput and
// allocations per call.
func measureThroughput(client transport.Client, parallel, calls int) (E7Result, error) {
	req := &wire.Request{ID: 1, Op: wire.OpInvoke, GUID: "g", Method: "add",
		Args: []wire.Value{{Kind: wire.KInt, Int: 20}, {Kind: wire.KInt, Int: 22}}}
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(calls) {
				resp, err := client.Call(req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Result.Int != 42 {
					errs <- fmt.Errorf("bad echo %+v", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	select {
	case err := <-errs:
		return E7Result{}, err
	default:
	}
	return E7Result{
		Protocol:    "rrp",
		Parallelism: parallel,
		Calls:       calls,
		CallsPerSec: float64(calls) / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(calls),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(calls),
	}, nil
}

// e7 measures RRP node-to-node throughput under concurrency: the
// multiplexed transport vs the lock-step baseline, at parallelism 1, 8
// and 64, on the raw loopback and under simulated LAN conditions.  It
// prints the comparison and writes the machine-readable record so the
// perf trajectory is tracked across PRs.
func e7(jsonPath string) error {
	echo := func(req *wire.Request) *wire.Response {
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KInt, Int: 42}}
	}
	networks := []struct {
		name    string
		profile netsim.Profile
	}{
		{"loopback", netsim.Profile{}},
		{"lan", netsim.Profile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9, Seed: 1}},
	}
	report := E7Report{
		Experiment:  "e7",
		Description: "RRP concurrency throughput: multiplexed transport vs lock-step baseline, echo workload",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	fmt.Println("concurrent echo calls over one shared RRP connection")
	fmt.Printf("  %-9s %-12s %3s %12s %12s %10s\n", "network", "mode", "p", "calls/s", "ns/op", "allocs/op")
	speedup := map[string]float64{}
	for _, nw := range networks {
		tr := transport.NewRRP(transport.Options{Profile: nw.profile})
		srv, err := tr.Listen("", echo)
		if err != nil {
			return err
		}
		for _, mode := range []string{"serialized", "multiplexed"} {
			for _, parallel := range []int{1, 8, 64} {
				client, err := tr.Dial(srv.Endpoint())
				if err != nil {
					srv.Close()
					return err
				}
				bench := client
				if mode == "serialized" {
					bench = transport.Lockstep(client)
				}
				calls := 4000
				if nw.name == "lan" && (mode == "serialized" || parallel == 1) {
					calls = 500 // latency-bound: don't wait all day for the baseline
				}
				// Warm up connections and pools outside the measurement.
				if _, err := measureThroughput(bench, parallel, 50); err != nil {
					client.Close()
					srv.Close()
					return err
				}
				res, err := measureThroughput(bench, parallel, calls)
				client.Close()
				if err != nil {
					srv.Close()
					return err
				}
				res.Network = nw.name
				res.Mode = mode
				report.Results = append(report.Results, res)
				speedup[fmt.Sprintf("%s/%s/%d", nw.name, mode, parallel)] = res.CallsPerSec
				fmt.Printf("  %-9s %-12s %3d %12.0f %12.0f %10.1f\n",
					nw.name, mode, parallel, res.CallsPerSec, res.NsPerOp, res.AllocsPerOp)
			}
		}
		srv.Close()
	}
	for _, nw := range networks {
		base := speedup[nw.name+"/serialized/64"]
		mux := speedup[nw.name+"/multiplexed/64"]
		if base > 0 {
			fmt.Printf("\n%s speedup at parallelism 64: %.1fx (multiplexed %0.f vs lock-step %0.f calls/s)\n",
				nw.name, mux/base, mux, base)
		}
	}
	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nmachine-readable results written to %s\n", jsonPath)
	return nil
}

// e8Source is the E8 workload (kept in sync with bench_test.go):
// deposit() is pure bytecode, slowDeposit() blocks 200µs between heap
// accesses via the sys.Clock.sleepMicros native — per-call blocking work
// that cannot release the VM because it sits between a field read and a
// field write.
const e8Source = `
class Account {
    int balance;
    Account(int b) { this.balance = b; }
    int deposit(int x) { balance = balance + x; return balance; }
    int slowDeposit(int x) {
        sys.Clock.sleepMicros(200);
        balance = balance + x;
        return balance;
    }
}
class Mk {
    static Account make() { return new Account(0); }
}
class Main { static void main() {} }`

// E8Result is one row of the machine-readable intra-node parallelism
// record, tracked across PRs in BENCH_E8.json.
type E8Result struct {
	Workload    string  `json:"workload"` // cpu | block
	Mode        string  `json:"mode"`     // coarse | sharded
	Target      string  `json:"target"`   // distinct | shared
	Parallelism int     `json:"parallelism"`
	Calls       int     `json:"calls"`
	CallsPerSec float64 `json:"calls_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// E8Report is the top-level BENCH_E8.json document.
type E8Report struct {
	Experiment  string     `json:"experiment"`
	Description string     `json:"description"`
	Timestamp   string     `json:"timestamp"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Results     []E8Result `json:"results"`
}

// e8Node builds one single node over the E8 workload, optionally under
// the seed's coarse VM lock.
func e8Node(coarse bool) (*node.Node, error) {
	prog, err := minijava.Compile(e8Source)
	if err != nil {
		return nil, err
	}
	res, err := transform.Transform(prog, transform.Options{Protocols: []string{"rrp"}})
	if err != nil {
		return nil, err
	}
	var opts []vm.Option
	if coarse {
		opts = append(opts, vm.WithCoarseLock())
	}
	return node.New(node.Config{Name: "e8", Result: res, VMOpts: opts})
}

// e8Measure spreads `calls` CallOn invocations over `parallel`
// goroutines; goroutine g targets refs[g%len(refs)].
func e8Measure(n *node.Node, refs []vm.Value, method string, parallel, calls int) (E8Result, error) {
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	arg := []vm.Value{vm.IntV(1)}
	start := time.Now()
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ref := refs[g%len(refs)]
			for next.Add(1) <= int64(calls) {
				if _, err := n.CallOn(ref, method, arg...); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return E8Result{}, err
	default:
	}
	return E8Result{
		Parallelism: parallel,
		Calls:       calls,
		CallsPerSec: float64(calls) / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(calls),
	}, nil
}

// e8 measures intra-node invocation throughput under concurrency: the
// sharded per-object locking vs the seed's coarse VM lock, against
// distinct vs one shared target object, at parallelism 1, 8 and 64.
// The "block" workload is the headline (blocking work a coarse lock can
// never overlap); the "cpu" workload shows GOMAXPROCS-bound scaling on
// multicore hosts.  It prints the comparison and writes the
// machine-readable record so the perf trajectory is tracked across PRs.
func e8(jsonPath string) error {
	report := E8Report{
		Experiment: "e8",
		Description: "intra-node parallelism: sharded per-object VM locking vs coarse-lock baseline, " +
			"CallOn invocations against distinct vs shared target objects",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	fmt.Printf("concurrent intra-node invocations (GOMAXPROCS=%d)\n", report.GoMaxProcs)
	fmt.Printf("  %-6s %-8s %-9s %3s %12s %12s\n", "work", "mode", "target", "p", "calls/s", "ns/op")
	rate := map[string]float64{}
	for _, wl := range []struct{ name, method string }{{"cpu", "deposit"}, {"block", "slowDeposit"}} {
		for _, mode := range []string{"coarse", "sharded"} {
			n, err := e8Node(mode == "coarse")
			if err != nil {
				return err
			}
			for _, target := range []string{"distinct", "shared"} {
				for _, parallel := range []int{1, 8, 64} {
					objects := 1
					if target == "distinct" {
						objects = parallel
					}
					refs := make([]vm.Value, objects)
					for i := range refs {
						v, err := n.InvokeStatic("Mk", "make")
						if err != nil {
							n.Close()
							return err
						}
						refs[i] = v
					}
					calls := 4000
					if wl.name == "block" {
						// Blocking workload: only sharded+distinct scales,
						// so budget the serial configurations down.
						calls = 300
						if mode == "sharded" && target == "distinct" && parallel > 1 {
							calls = 300 * parallel
							if calls > 3000 {
								calls = 3000
							}
						}
					}
					// Warm-up outside the measurement.
					if _, err := e8Measure(n, refs, wl.method, parallel, 2*parallel+16); err != nil {
						n.Close()
						return err
					}
					res, err := e8Measure(n, refs, wl.method, parallel, calls)
					if err != nil {
						n.Close()
						return err
					}
					res.Workload, res.Mode, res.Target = wl.name, mode, target
					report.Results = append(report.Results, res)
					rate[fmt.Sprintf("%s/%s/%s/%d", wl.name, mode, target, parallel)] = res.CallsPerSec
					fmt.Printf("  %-6s %-8s %-9s %3d %12.0f %12.0f\n",
						wl.name, mode, target, parallel, res.CallsPerSec, res.NsPerOp)
				}
			}
			n.Close()
		}
	}
	for _, wl := range []string{"cpu", "block"} {
		base := rate[wl+"/coarse/distinct/64"]
		shard := rate[wl+"/sharded/distinct/64"]
		if base > 0 {
			fmt.Printf("\n%s distinct-objects speedup at parallelism 64: %.1fx (sharded %.0f vs coarse %.0f calls/s)\n",
				wl, shard/base, shard, base)
		}
		sb := rate[wl+"/coarse/shared/64"]
		ss := rate[wl+"/sharded/shared/64"]
		if sb > 0 {
			fmt.Printf("%s shared-object ratio at parallelism 64: %.1fx (monitor semantics: sharding must NOT speed this up)\n",
				wl, ss/sb)
		}
	}
	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nmachine-readable results written to %s\n", jsonPath)
	return nil
}

// ----- E9: adaptive placement -----

// e9Config carries the -adapt-* and -e9-* flag values.
type e9Config struct {
	window    time.Duration
	threshold float64
	minCalls  int
	confirm   int
	budget    int
	phase     time.Duration
	parallel  int
	minRatio  float64
	pool      int
}

// e9Source is the E9 workload: one hot shared object whose every call
// comes from the driver node.  bump does a little real work per call
// (a short accumulation loop) so the measurement compares placements,
// not just invocation plumbing.
const e9Source = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump(int x) {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) { acc = acc + x; }
        n = n + acc;
        return n;
    }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// E9Bucket is one throughput sample during the adaptive phase.
type E9Bucket struct {
	OffsetMs    int64   `json:"offset_ms"`
	CallsPerSec float64 `json:"calls_per_sec"`
}

// E9Decision is one adapter decision, for the machine-readable log.
type E9Decision struct {
	Node     string `json:"node"`
	AtMs     int64  `json:"at_ms"` // offset from phase start
	Window   int    `json:"window"`
	Rule     string `json:"rule"`
	Action   string `json:"action"`
	GUID     string `json:"guid,omitempty"`
	Class    string `json:"class,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
	Reason   string `json:"reason"`
	Executed bool   `json:"executed"`
	Err      string `json:"err,omitempty"`
}

// E9Report is the top-level BENCH_E9.json document.
type E9Report struct {
	Experiment  string  `json:"experiment"`
	Description string  `json:"description"`
	Timestamp   string  `json:"timestamp"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Parallel    int     `json:"parallelism"`
	AdaptWindow string  `json:"adapt_window"`
	Threshold   float64 `json:"adapt_threshold"`
	MinCalls    int     `json:"adapt_min_calls"`
	Confirm     int     `json:"adapt_confirm"`
	Budget      int     `json:"adapt_budget"`

	OptimalCallsPerSec   float64 `json:"optimal_calls_per_sec"`
	MisplacedCallsPerSec float64 `json:"misplaced_calls_per_sec"`
	ConvergedCallsPerSec float64 `json:"converged_calls_per_sec"`
	ConvergedRatio       float64 `json:"converged_ratio"`

	Buckets   []E9Bucket   `json:"buckets"`
	Decisions []E9Decision `json:"decisions"`
}

// e9Nodes builds the two-node deployment over a simulated LAN and
// returns (driver, server, driver endpoint, server endpoint).
func e9Nodes(pool int) (*rafda.Node, *rafda.Node, string, string, error) {
	prog, err := rafda.CompileString(e9Source)
	if err != nil {
		return nil, nil, "", "", err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return nil, nil, "", "", err
	}
	// The measured phases interpret hundreds of millions of instructions;
	// lift the anti-runaway budget well clear of them.
	const steps = int64(1) << 40
	nodeA, err := tr.NewNode(rafda.NodeConfig{Name: "driver", Network: rafda.NetLAN, MaxSteps: steps, PoolSize: pool})
	if err != nil {
		return nil, nil, "", "", err
	}
	nodeB, err := tr.NewNode(rafda.NodeConfig{Name: "server", Network: rafda.NetLAN, MaxSteps: steps, PoolSize: pool})
	if err != nil {
		nodeA.Close()
		return nil, nil, "", "", err
	}
	epA, err := nodeA.Serve("rrp", "")
	if err == nil {
		var epB string
		epB, err = nodeB.Serve("rrp", "")
		if err == nil {
			return nodeA, nodeB, epA, epB, nil
		}
	}
	nodeA.Close()
	nodeB.Close()
	return nil, nil, "", "", err
}

// tailMean is the mean calls/sec of the last third of a phase's
// buckets — the steady-state statistic both phases are scored by.
func tailMean(buckets []E9Bucket) float64 {
	tail := buckets[len(buckets)-len(buckets)/3:]
	var sum float64
	for _, b := range tail {
		sum += b.CallsPerSec
	}
	return sum / float64(len(tail))
}

// e9Drive hammers ref from cfg.parallel goroutines for cfg.phase and
// samples throughput into 100ms buckets.
func e9Drive(n *rafda.Node, ref *rafda.Ref, cfg e9Config) ([]E9Bucket, float64, error) {
	var calls atomic.Int64
	errs := make(chan error, cfg.parallel)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < cfg.parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := n.CallOn(ref, "bump", 1); err != nil {
					errs <- err
					return
				}
				calls.Add(1)
			}
		}()
	}
	const bucket = 100 * time.Millisecond
	var buckets []E9Bucket
	start := time.Now()
	prev := int64(0)
	tick := time.NewTicker(bucket)
	for time.Since(start) < cfg.phase {
		<-tick.C
		cur := calls.Load()
		buckets = append(buckets, E9Bucket{
			OffsetMs:    time.Since(start).Milliseconds(),
			CallsPerSec: float64(cur-prev) / bucket.Seconds(),
		})
		prev = cur
	}
	tick.Stop()
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return nil, 0, err
	default:
	}
	return buckets, float64(calls.Load()) / elapsed.Seconds(), nil
}

// e9 reproduces the paper's §4 "future work" as a closed loop: the same
// two-node deployment is measured with the hot object placed optimally
// by hand, then mis-placed with the adaptive engine switched on.  The
// engine must discover the call affinity, migrate the object to the
// driver (zero manual Migrate/PlaceClass), and converge throughput to
// at least cfg.minRatio of the manual-optimal deployment — without
// ping-ponging the object (budget respected).
func e9(cfg e9Config, jsonPath string) error {
	report := E9Report{
		Experiment: "e9",
		Description: "adaptive placement: mis-placed hot object, telemetry-driven migration " +
			"vs manual-optimal placement, two nodes over simulated LAN",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Parallel:    cfg.parallel,
		AdaptWindow: cfg.window.String(),
		Threshold:   cfg.threshold,
		MinCalls:    cfg.minCalls,
		Confirm:     cfg.confirm,
		Budget:      cfg.budget,
	}

	// Phase 1 — manual-optimal: the hot object is local to the driver.
	// Both phases are scored by the same statistic — the mean of the
	// last third of their 100ms buckets — so warm-up transients cancel
	// out of the ratio.
	{
		nodeA, nodeB, _, _, err := e9Nodes(cfg.pool)
		if err != nil {
			return err
		}
		made, err := nodeA.Call("Setup", "make")
		if err != nil {
			nodeA.Close()
			nodeB.Close()
			return err
		}
		buckets, _, err := e9Drive(nodeA, made.(*rafda.Ref), cfg)
		nodeA.Close()
		nodeB.Close()
		if err != nil {
			return err
		}
		if len(buckets) < 6 {
			return fmt.Errorf("phase too short: %d buckets (raise -e9-seconds)", len(buckets))
		}
		report.OptimalCallsPerSec = tailMean(buckets)
	}

	// Phase 2 — mis-placed with the adapter on: the object starts on
	// the server; every call crosses the simulated LAN until the engine
	// moves it.
	nodeA, nodeB, _, epB, err := e9Nodes(cfg.pool)
	if err != nil {
		return err
	}
	defer nodeA.Close()
	defer nodeB.Close()
	phaseStart := time.Now()
	var decMu sync.Mutex
	onDecision := func(nodeName string) func(rafda.AdaptDecision) {
		return func(d rafda.AdaptDecision) {
			decMu.Lock()
			report.Decisions = append(report.Decisions, E9Decision{
				Node: nodeName, AtMs: time.Since(phaseStart).Milliseconds(),
				Window: d.Window, Rule: d.Rule, Action: d.Action,
				GUID: d.GUID, Class: d.Class, Endpoint: d.Endpoint,
				Reason: d.Reason, Executed: d.Executed, Err: d.Err,
			})
			decMu.Unlock()
		}
	}
	acfg := func(name string) rafda.AdaptConfig {
		return rafda.AdaptConfig{
			Window: cfg.window, Threshold: cfg.threshold, MinCalls: cfg.minCalls,
			Confirm: cfg.confirm, Budget: cfg.budget, OnDecision: onDecision(name),
		}
	}
	adA := nodeA.StartAdapter(acfg("driver"))
	adB := nodeB.StartAdapter(acfg("server"))

	if err := nodeA.PlaceClass("Counter", epB); err != nil {
		return err
	}
	made, err := nodeA.Call("Setup", "make")
	if err != nil {
		return err
	}
	buckets, _, err := e9Drive(nodeA, made.(*rafda.Ref), cfg)
	// Freeze the engines before reading the decision log: Stop waits
	// out any in-flight tick, so no OnDecision callback races the
	// acceptance checks or the JSON marshal below.
	adA.Stop()
	adB.Stop()
	if err != nil {
		return err
	}
	report.Buckets = buckets

	// Head = mis-placed cost, tail third = converged steady state.
	if len(buckets) < 6 {
		return fmt.Errorf("phase too short: %d buckets (raise -e9-seconds)", len(buckets))
	}
	report.MisplacedCallsPerSec = buckets[0].CallsPerSec
	report.ConvergedCallsPerSec = tailMean(buckets)
	report.ConvergedRatio = report.ConvergedCallsPerSec / report.OptimalCallsPerSec

	fmt.Printf("adaptive placement, %d callers over simulated LAN (window %v, threshold %.0f%%, confirm %d, budget %d)\n\n",
		cfg.parallel, cfg.window, 100*cfg.threshold, cfg.confirm, cfg.budget)
	fmt.Printf("  %-34s %12.0f calls/s\n", "manual-optimal (object local)", report.OptimalCallsPerSec)
	fmt.Printf("  %-34s %12.0f calls/s\n", "mis-placed, first 100ms", report.MisplacedCallsPerSec)
	fmt.Printf("  %-34s %12.0f calls/s  (%.0f%% of optimal)\n", "converged steady state",
		report.ConvergedCallsPerSec, 100*report.ConvergedRatio)
	fmt.Println("\nthroughput trajectory:")
	for _, b := range buckets {
		fmt.Printf("  t+%5dms %10.0f calls/s\n", b.OffsetMs, b.CallsPerSec)
	}
	fmt.Println("\ndecision log:")
	for _, d := range report.Decisions {
		status := "executed"
		if !d.Executed {
			status = "held(" + d.Err + ")"
		}
		tgt := d.GUID
		if tgt == "" {
			tgt = "class " + d.Class
		}
		fmt.Printf("  t+%5dms %-7s %-11s %-12s %s -> %q  [%s]\n",
			d.AtMs, d.Node, d.Rule, d.Action, tgt, d.Endpoint, status)
	}

	// Acceptance: the loop must have closed — at least one executed
	// migration with no manual call, throughput converged, no target
	// over budget.
	migrations := map[string]int{}
	correct := 0
	for _, d := range report.Decisions {
		if d.Action != "migrate" || !d.Executed {
			continue
		}
		migrations[d.GUID]++
		if d.Node == "server" && d.Endpoint == nodeA.Endpoint("rrp") {
			correct++
		}
	}
	if correct == 0 {
		return fmt.Errorf("adapter made no correct migration decision (object never moved to the driver)")
	}
	for g, m := range migrations {
		if m > cfg.budget {
			return fmt.Errorf("ping-pong: object %s migrated %d times (budget %d)", g, m, cfg.budget)
		}
	}
	if report.ConvergedRatio < cfg.minRatio {
		return fmt.Errorf("converged throughput %.0f calls/s is %.0f%% of optimal %.0f — below the %.0f%% bar",
			report.ConvergedCallsPerSec, 100*report.ConvergedRatio,
			report.OptimalCallsPerSec, 100*cfg.minRatio)
	}
	fmt.Printf("\nclosed loop converged: %.0f%% of manual-optimal with %d automatic migration(s), zero manual calls\n",
		100*report.ConvergedRatio, correct)

	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("machine-readable results written to %s\n", jsonPath)
	return nil
}

// ----- E10: cluster coordination (multi-hop adaptive migration) -----

// e10Config carries the -e10-* flag values.
type e10Config struct {
	heartbeat time.Duration
	phase     time.Duration
	parallel  int
	minRatio  float64
	pool      int
}

// E10Event is one cluster coordination event, node-attributed.
type E10Event struct {
	Node   string `json:"node"`
	AtMs   int64  `json:"at_ms"`
	Tick   uint64 `json:"tick"`
	Kind   string `json:"kind"`
	Peer   string `json:"peer,omitempty"`
	GUID   string `json:"guid,omitempty"`
	Class  string `json:"class,omitempty"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// E10Report is the top-level BENCH_E10.json document.
type E10Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Timestamp   string `json:"timestamp"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Parallel    int    `json:"parallelism"`
	Heartbeat   string `json:"cluster_heartbeat"`

	OptimalCallsPerSec   float64 `json:"optimal_calls_per_sec"`
	MisplacedCallsPerSec float64 `json:"misplaced_calls_per_sec"`
	ConvergedCallsPerSec float64 `json:"converged_calls_per_sec"`
	ConvergedRatio       float64 `json:"converged_ratio"`

	MultiHop struct {
		Proposer string `json:"proposer"`
		Source   string `json:"source"`
		Target   string `json:"target"`
	} `json:"multi_hop"`

	Buckets []E9Bucket `json:"buckets"`
	Events  []E10Event `json:"events"`
}

// e10Node builds one cluster-member node over the simulated LAN.
func e10Node(tr *rafda.Transformed, name string, pool int) (*rafda.Node, string, error) {
	const steps = int64(1) << 40
	n, err := tr.NewNode(rafda.NodeConfig{Name: name, Network: rafda.NetLAN, MaxSteps: steps, PoolSize: pool})
	if err != nil {
		return nil, "", err
	}
	ep, err := n.Serve("rrp", "")
	if err != nil {
		n.Close()
		return nil, "", err
	}
	return n, ep, nil
}

// e10 demonstrates the cluster coordination plane end to end: three
// nodes — "host" (initially owns the hot object), "caller" (drives all
// the traffic) and "scheduler" (idle, but the only member allowed to
// propose) — gossip membership, affinity rollups and placement intents.
// The scheduler must observe, via gossip alone, that the object on the
// host belongs at the caller, propose the host→caller migration (a
// multi-hop decision: proposer ≠ source ≠ target), and the host must
// execute it after reconciliation — zero manual Migrate/PlaceClass
// calls, no adapt engine anywhere.  The caller's stale proxy resolves
// the new home through the shared directory, and throughput converges
// to the manual-optimal deployment.
func e10(cfg e10Config, jsonPath string) error {
	report := E10Report{
		Experiment: "e10",
		Description: "cluster coordination: 3-node gossip cluster converges a mis-placed hot object " +
			"via a multi-hop migration (proposer != source != target), zero manual calls",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Parallel:   cfg.parallel,
		Heartbeat:  cfg.heartbeat.String(),
	}
	prog, err := rafda.CompileString(e9Source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return err
	}
	drive := e9Config{phase: cfg.phase, parallel: cfg.parallel}

	// Phase 1 — manual-optimal baseline: the object is local to the
	// caller; same tail-mean statistic as phase 2.
	{
		caller, _, err := e10Node(tr, "caller", cfg.pool)
		if err != nil {
			return err
		}
		made, err := caller.Call("Setup", "make")
		if err != nil {
			caller.Close()
			return err
		}
		buckets, _, err := e9Drive(caller, made.(*rafda.Ref), drive)
		caller.Close()
		if err != nil {
			return err
		}
		if len(buckets) < 6 {
			return fmt.Errorf("phase too short: %d buckets (raise -e10-seconds)", len(buckets))
		}
		report.OptimalCallsPerSec = tailMean(buckets)
	}

	// Phase 2 — the cluster.
	scheduler, epA, err := e10Node(tr, "scheduler", cfg.pool)
	if err != nil {
		return err
	}
	defer scheduler.Close()
	host, epB, err := e10Node(tr, "host", cfg.pool)
	if err != nil {
		return err
	}
	defer host.Close()
	caller, _, err := e10Node(tr, "caller", cfg.pool)
	if err != nil {
		return err
	}
	defer caller.Close()

	phaseStart := time.Now()
	var evMu sync.Mutex
	onEvent := func(nodeName string) func(rafda.ClusterEvent) {
		return func(e rafda.ClusterEvent) {
			evMu.Lock()
			report.Events = append(report.Events, E10Event{
				Node: nodeName, AtMs: time.Since(phaseStart).Milliseconds(),
				Tick: e.Tick, Kind: e.Kind, Peer: e.Peer, GUID: e.GUID,
				Class: e.Class, From: e.From, To: e.To, Detail: e.Detail,
			})
			evMu.Unlock()
		}
	}
	ccfg := func(name string, propose bool, seeds ...string) rafda.ClusterConfig {
		return rafda.ClusterConfig{
			Seeds:     seeds,
			Heartbeat: cfg.heartbeat,
			Fanout:    3,
			Propose:   propose,
			OnEvent:   onEvent(name),
		}
	}
	clA, err := scheduler.JoinCluster(ccfg("scheduler", true))
	if err != nil {
		return err
	}
	clB, err := host.JoinCluster(ccfg("host", false, epA))
	if err != nil {
		return err
	}
	clC, err := caller.JoinCluster(ccfg("caller", false, epA, epB))
	if err != nil {
		return err
	}
	clA.Start()
	clB.Start()
	clC.Start()

	// Mis-place the hot object on the host, then hammer it from the
	// caller.  Only the scheduler may propose; only the host may
	// execute; the caller only talks.
	if err := caller.PlaceClass("Counter", epB); err != nil {
		return err
	}
	made, err := caller.Call("Setup", "make")
	if err != nil {
		return err
	}
	buckets, _, err := e9Drive(caller, made.(*rafda.Ref), drive)
	// Freeze the plane before reading the logs.
	clA.Stop()
	clB.Stop()
	clC.Stop()
	if err != nil {
		return err
	}
	report.Buckets = buckets
	if len(buckets) < 6 {
		return fmt.Errorf("phase too short: %d buckets (raise -e10-seconds)", len(buckets))
	}
	report.MisplacedCallsPerSec = buckets[0].CallsPerSec
	report.ConvergedCallsPerSec = tailMean(buckets)
	report.ConvergedRatio = report.ConvergedCallsPerSec / report.OptimalCallsPerSec

	fmt.Printf("cluster coordination, %d callers over simulated LAN (heartbeat %v, fanout 3)\n\n",
		cfg.parallel, cfg.heartbeat)
	fmt.Printf("  %-34s %12.0f calls/s\n", "manual-optimal (object at caller)", report.OptimalCallsPerSec)
	fmt.Printf("  %-34s %12.0f calls/s\n", "mis-placed, first 100ms", report.MisplacedCallsPerSec)
	fmt.Printf("  %-34s %12.0f calls/s  (%.0f%% of optimal)\n", "converged steady state",
		report.ConvergedCallsPerSec, 100*report.ConvergedRatio)
	fmt.Println("\nthroughput trajectory:")
	for _, b := range buckets {
		fmt.Printf("  t+%5dms %10.0f calls/s\n", b.OffsetMs, b.CallsPerSec)
	}
	fmt.Println("\ncoordination log (propose/intent/migrate/dir):")
	evMu.Lock()
	events := append([]E10Event(nil), report.Events...)
	evMu.Unlock()
	for _, e := range events {
		switch e.Kind {
		case "propose", "intent", "migrate", "migrate-fail", "dir", "class-apply":
			tgt := e.GUID
			if tgt == "" {
				tgt = "class " + e.Class
			}
			fmt.Printf("  t+%5dms %-10s %-12s %-14s %s -> %s  [%s]\n",
				e.AtMs, e.Node, e.Kind, tgt, e.From, e.To, e.Detail)
		}
	}

	// Acceptance: exactly one executed migration; it must be multi-hop
	// (proposed by the scheduler, executed by the host, targeting the
	// caller); throughput must converge.
	var migrations []E10Event
	for _, e := range events {
		if e.Kind == "migrate" {
			migrations = append(migrations, e)
		}
	}
	if len(migrations) != 1 {
		return fmt.Errorf("want exactly 1 executed migration, got %d: %+v", len(migrations), migrations)
	}
	m := migrations[0]
	epC := caller.Endpoint("rrp")
	if m.Node != "host" || m.Peer != "scheduler" || m.To != epC {
		return fmt.Errorf("not the multi-hop migration wanted (proposer=scheduler source=host target=caller): %+v", m)
	}
	report.MultiHop.Proposer = m.Peer
	report.MultiHop.Source = m.Node
	report.MultiHop.Target = "caller"
	if report.ConvergedRatio < cfg.minRatio {
		return fmt.Errorf("converged throughput %.0f calls/s is %.0f%% of optimal %.0f — below the %.0f%% bar",
			report.ConvergedCallsPerSec, 100*report.ConvergedRatio,
			report.OptimalCallsPerSec, 100*cfg.minRatio)
	}
	fmt.Printf("\nmulti-hop converged: scheduler proposed, host executed, caller received — "+
		"%.0f%% of manual-optimal, zero manual calls\n", 100*report.ConvergedRatio)

	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("machine-readable results written to %s\n", jsonPath)
	return nil
}
