package main

// E15 shed arm — proactive load shedding under sustained saturation.
//
// The main arm's disturbances are transient; this arm is steady-state
// hostile: one server node configured with the full shedding tier
// (strict-priority admission, per-tenant fair share, CoDel) is offered
// an open-loop Poisson stream at a multiple (>=3x) of its *measured*
// closed-loop capacity.  The tenant mix is adversarial by design — one
// flood tenant contributes ~3/4 of arrivals at priority 0 while two
// high-priority tenants (wire tag-5 class 1) and two background
// tenants make up the rest — so an unprotected node would queue
// without bound and every tenant's tail would blow through the SLO.
//
// The workload is slot-bound, not CPU-bound: hold(us) blocks inside
// the VM via sys.Clock.sleepMicros (the E8 blocking tier), occupying
// its object gate and its dispatch slot for a fixed service time.
// That pins the saturation at the admission plane the shedding
// interceptors govern — and keeps the harness itself (generator,
// client, transport loops) off the contended resource, which matters
// on small hosts: a CPU-bound workload at 3x on one core starves the
// measurement as much as the system, and every tenant's latency
// drowns in scheduler noise before any policy can act.
//
// Key row (gate): shed_ok — 1.0 iff the offered factor reached the
// configured bar (>=3), the priority and fair-share policies both
// refused work, and every high-priority tenant kept its clean p99
// under the SLO with at most a bounded shed fraction.  Latency is
// again measured from scheduled arrival time (coordinated-omission
// correction), and refusals are recognised by the wire "load-shed:"
// marker every shedding interceptor prefixes.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rafda"
	"rafda/internal/telemetry"
	"rafda/internal/transport"
	"rafda/internal/wire"
)

// E15ShedTenant is one tenant's outcome row in the shed arm.
type E15ShedTenant struct {
	Tenant   string  `json:"tenant"`
	Class    string  `json:"class"` // hp | flood | bg
	Priority uint32  `json:"priority"`
	Offered  int     `json:"offered"`
	Served   int     `json:"served"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	SloMet   bool    `json:"slo_met"` // gated for hp rows only
}

// E15ShedArm is the shed arm's section of BENCH_E15.json.
type E15ShedArm struct {
	CapacityPerSec float64 `json:"capacity_per_sec"` // measured closed-loop
	OfferedPerSec  float64 `json:"offered_per_sec"`
	Factor         float64 `json:"factor"`
	HoldUs         int     `json:"hold_us"` // per-call blocking service time
	MaxInflight    int     `json:"max_inflight"`
	PriorityAt     int     `json:"priority_at"`
	FairShareAt    int     `json:"fairshare_at"`
	CoDelTargetMs  float64 `json:"codel_target_ms"`

	Offered int `json:"offered"`
	Served  int `json:"served"`
	Shed    int `json:"shed"`
	Errors  int `json:"errors"`

	// The server's own counters, out of the same introspection snapshot
	// rafdac top renders.
	ShedPriority  uint64            `json:"shed_priority"`
	ShedFairShare uint64            `json:"shed_fairshare"`
	ShedCoDel     uint64            `json:"shed_codel"`
	ByPriority    map[string]uint64 `json:"shed_by_priority,omitempty"`
	ByTenant      map[string]uint64 `json:"shed_by_tenant,omitempty"`

	Tenants []E15ShedTenant `json:"tenant_rows"`
}

// e15ShedSpec is one tenant class in the adversarial mix.
type e15ShedSpec struct {
	name     string
	class    string
	priority uint32
	weight   float64
}

// The shedding knobs, chosen so the two admission policies trigger at
// staggered depths: the fair-share band opens at 40, below the
// priority threshold at 48, so tenant skew is punished first and the
// global backstop fires on the overshoot above it.  Priority class 1
// survives to depth priorityAt<<1 = 96, above the 80-slot cap, so
// high-priority traffic is never priority-shed.  The object population
// is sized so the ~48 admitted calls spread thin (~0.13 per object
// gate) and a high-priority call rarely queues behind more than one
// committed service time.
const (
	e15ShedMaxInflight = 80
	e15ShedPriorityAt  = 48
	e15ShedFairShareAt = 40
	e15ShedCoDelTarget = 5 * time.Millisecond
	e15ShedObjects     = 384
	e15ShedHoldUs      = 30_000 // 30ms blocking service per call
	e15ShedDuration    = 2500 * time.Millisecond
	e15ShedCalPar      = 36 // capacity probe width: below every shed threshold
	e15ShedHPMaxShed   = 0.25
)

// e15Shed runs the shed arm and fills the report's shed rows.
func e15Shed(cfg e15Config, report *E15Report) error {
	specs := []e15ShedSpec{
		{"hp-00", "hp", 1, 0.03},
		{"hp-01", "hp", 1, 0.03},
		{"flood", "flood", 0, 0.76},
		{"bg-00", "bg", 0, 0.09},
		{"bg-01", "bg", 0, 0.09},
	}

	prog, err := rafda.CompileString(e15Source)
	if err != nil {
		return err
	}
	tr, err := prog.Transform(rafda.WithProtocols("rrp"))
	if err != nil {
		return err
	}
	const steps = int64(1) << 40
	srv, err := tr.NewNode(rafda.NodeConfig{
		Name: "shed-srv", MaxSteps: steps,
		Limits: rafda.LimitsConfig{MaxInflight: e15ShedMaxInflight},
		Shed: rafda.ShedConfig{
			PriorityAt:  e15ShedPriorityAt,
			FairShareAt: e15ShedFairShareAt,
			CoDelTarget: e15ShedCoDelTarget,
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ep, err := srv.Serve("rrp", "")
	if err != nil {
		return err
	}
	clientT := transport.NewRRP(transport.Options{})
	client, err := clientT.Dial(ep)
	if err != nil {
		return err
	}
	defer client.Close()
	entries, err := e15MakeObjects(client, ep, 0, e15ShedObjects)
	if err != nil {
		return err
	}
	holdCall := func(e *e15Entry, caller string, prio uint32, deadlineUs uint64) (*wire.Response, error) {
		return client.Call(&wire.Request{
			ID: 1, Op: wire.OpInvoke, GUID: e.guid, Method: "hold",
			Args:       []wire.Value{{Kind: wire.KInt, Int: e15ShedHoldUs}},
			Caller:     caller,
			Priority:   prio,
			DeadlineUs: deadlineUs,
		})
	}

	// Measure capacity with a closed loop: e15ShedCalPar callers on
	// distinct objects, below every shedding threshold, counting
	// completed calls.  The blocking service time makes the measure
	// machine-independent (~calPar/hold), but it is still measured, not
	// assumed — it includes the node's real dispatch and wire costs.
	const calSpan = 600 * time.Millisecond
	var calDone atomic.Int64
	calStop := make(chan struct{})
	var calWG sync.WaitGroup
	for g := 0; g < e15ShedCalPar; g++ {
		calWG.Add(1)
		go func(g int) {
			defer calWG.Done()
			for {
				select {
				case <-calStop:
					return
				default:
				}
				if resp, err := holdCall(entries[g%len(entries)], "calibrate", 0, 0); err != nil || resp.Err != "" {
					return
				}
				calDone.Add(1)
			}
		}(g)
	}
	time.Sleep(calSpan)
	close(calStop)
	calWG.Wait()
	capacity := float64(calDone.Load()) / calSpan.Seconds()
	if capacity <= 0 {
		return fmt.Errorf("shed calibration measured zero capacity")
	}
	factor := cfg.shedFactor
	if factor <= 0 {
		factor = 3
	}
	offeredRate := capacity * factor

	arm := &E15ShedArm{
		CapacityPerSec: capacity,
		OfferedPerSec:  offeredRate,
		Factor:         factor,
		HoldUs:         e15ShedHoldUs,
		MaxInflight:    e15ShedMaxInflight,
		PriorityAt:     e15ShedPriorityAt,
		FairShareAt:    e15ShedFairShareAt,
		CoDelTargetMs:  float64(e15ShedCoDelTarget) / float64(time.Millisecond),
	}

	// The open-loop flood: same absolute-schedule Poisson generator as
	// the main arm, latency measured from scheduled arrival.
	type cell struct {
		mu     sync.Mutex
		latMs  []float64
		served int
		shed   int
		errs   int
	}
	cells := make([]cell, len(specs))
	cum := make([]float64, len(specs))
	acc := 0.0
	for i, s := range specs {
		acc += s.weight
		cum[i] = acc
	}
	pick := func(r float64) int {
		for i := range cum {
			if r < cum[i] {
				return i
			}
		}
		return len(specs) - 1
	}
	rng := rand.New(rand.NewSource(int64(cfg.seed) + 42))
	deadlineUs := uint64(cfg.deadline / time.Microsecond)
	var callWG sync.WaitGroup
	offered := make([]int, len(specs))
	start := time.Now()
	for next := time.Duration(0); ; {
		next += time.Duration(rng.ExpFloat64() / offeredRate * float64(time.Second))
		if next >= e15ShedDuration {
			break
		}
		t := pick(rng.Float64())
		obj := entries[rng.Intn(len(entries))]
		offered[t]++
		sched := start.Add(next)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		spec, c := specs[t], &cells[t]
		callWG.Add(1)
		go func() {
			defer callWG.Done()
			resp, err := holdCall(obj, spec.name, spec.priority, deadlineUs)
			ms := float64(time.Since(sched)) / float64(time.Millisecond)
			c.mu.Lock()
			switch {
			case err != nil:
				c.errs++
			case strings.HasPrefix(resp.Err, "load-shed:"):
				c.shed++
			case resp.Err != "":
				c.errs++
			default:
				c.served++
				c.latMs = append(c.latMs, ms)
			}
			c.mu.Unlock()
		}()
	}
	callWG.Wait()

	// Server-side truth: the overload counters and the per-class/
	// per-tenant shed tables out of the introspection snapshot.
	out, err := srv.IntrospectJSON("metrics", "")
	if err != nil {
		return err
	}
	var in struct {
		Overload telemetry.OverloadSample `json:"overload"`
	}
	if err := json.Unmarshal([]byte(out), &in); err != nil {
		return fmt.Errorf("shed-srv introspection: %w", err)
	}
	arm.ShedPriority = in.Overload.ShedPriority
	arm.ShedFairShare = in.Overload.ShedFairShare
	arm.ShedCoDel = in.Overload.ShedCoDel
	sample := srv.ShedStats()
	arm.ByPriority = sample.ByPriority
	arm.ByTenant = sample.ByTenant

	sloBarMs := float64(cfg.sloP99) / float64(time.Millisecond)
	hpOK := true
	for i, s := range specs {
		c := &cells[i]
		sort.Float64s(c.latMs)
		row := E15ShedTenant{
			Tenant: s.name, Class: s.class, Priority: s.priority,
			Offered: offered[i], Served: c.served, Shed: c.shed, Errors: c.errs,
			P50Ms: pctile(c.latMs, 0.50), P99Ms: pctile(c.latMs, 0.99),
		}
		if n := len(c.latMs); n > 0 {
			row.MaxMs = c.latMs[n-1]
		}
		if s.class == "hp" {
			shedFrac := 0.0
			if row.Offered > 0 {
				shedFrac = float64(row.Shed+row.Errors) / float64(row.Offered)
			}
			row.SloMet = row.Served > 0 && row.P99Ms <= sloBarMs && shedFrac <= e15ShedHPMaxShed
			if !row.SloMet {
				hpOK = false
			}
		}
		arm.Offered += row.Offered
		arm.Served += row.Served
		arm.Shed += row.Shed
		arm.Errors += row.Errors
		arm.Tenants = append(arm.Tenants, row)
	}

	report.ShedArm = arm
	if hpOK && factor >= 3 && arm.ShedPriority > 0 && arm.ShedFairShare > 0 {
		report.ShedOK = 1.0
	}

	fmt.Printf("\nshed arm: %.1fx saturation (offered %.0f vs measured capacity %.0f calls/s), "+
		"%dms blocking service/call, %d arrivals over %v\n",
		factor, offeredRate, capacity, e15ShedHoldUs/1000, arm.Offered, e15ShedDuration)
	fmt.Printf("  knobs: max-inflight %d, priority-at %d, fairshare-at %d, codel %v\n\n",
		e15ShedMaxInflight, e15ShedPriorityAt, e15ShedFairShareAt, e15ShedCoDelTarget)
	fmt.Printf("  %-8s %-6s %3s %8s %8s %8s %7s %9s %9s  %s\n",
		"tenant", "class", "pri", "offered", "served", "shed", "errors", "p50", "p99", "slo")
	for _, t := range arm.Tenants {
		verdict := "-"
		if t.Class == "hp" {
			verdict = "met"
			if !t.SloMet {
				verdict = "MISSED"
			}
		}
		fmt.Printf("  %-8s %-6s %3d %8d %8d %8d %7d %7.2fms %7.2fms  %s\n",
			t.Tenant, t.Class, t.Priority, t.Offered, t.Served, t.Shed, t.Errors,
			t.P50Ms, t.P99Ms, verdict)
	}
	fmt.Printf("\n  server shed counters: priority %d  fair-share %d  codel %d\n",
		arm.ShedPriority, arm.ShedFairShare, arm.ShedCoDel)
	fmt.Printf("  hp SLO (p99 <= %.0fms, shed frac <= %.0f%%) met: %v;  shed_ok = %.0f\n",
		sloBarMs, 100*e15ShedHPMaxShed, hpOK, report.ShedOK)
	return nil
}
