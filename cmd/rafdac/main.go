// Command rafdac is the RAFDA compiler and transformer driver:
//
//	rafdac compile  -o prog.rar file.mj...         compile sources
//	rafdac analyze  [-exclude A,B] file.mj|.rar    substitutability report
//	rafdac transform [-protocols p,q] [-o out.rar] file.mj|.rar
//	rafdac disasm   [-code] [-class C] file.mj|.rar
//	rafdac run      [-main C] [-transformed] file.mj|.rar
//	rafdac verify   file.mj|.rar
//	rafdac trace    -node proto://host:port [-node ...] <hex-trace-id>
//	rafdac top      [-watch 2s] -node proto://host:port [-node ...]
//
// Inputs ending in .rar are binary class archives produced by compile or
// transform; anything else is treated as mini-Java source.  trace and
// top query running nodes over the effect-free introspection op
// (docs/OBSERVABILITY.md): trace reassembles one distributed call's
// span tree across every queried node's flight recorder, top prints
// each node's activity and overload counters plus its per-kind,
// per-op and per-tenant latency digests; -watch re-polls and redraws
// in place at the given interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rafda"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rafdac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rafdac <compile|analyze|transform|disasm|run|verify|trace|top> [flags] files...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "trace":
		return cmdTrace(rest)
	case "top":
		return cmdTop(rest)
	case "compile":
		return cmdCompile(rest)
	case "analyze":
		return cmdAnalyze(rest)
	case "transform":
		return cmdTransform(rest)
	case "disasm":
		return cmdDisasm(rest)
	case "run":
		return cmdRun(rest)
	case "verify":
		return cmdVerify(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// load reads a program from source files or one .rar archive.
func load(paths []string) (*rafda.Program, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no input files")
	}
	if strings.HasSuffix(paths[0], ".rar") {
		if len(paths) != 1 {
			return nil, fmt.Errorf("an archive must be the only input")
		}
		f, err := os.Open(paths[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rafda.Decode(f)
	}
	sources := make(map[string]string, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		sources[filepath.Base(p)] = string(b)
	}
	return rafda.Compile(sources)
}

func save(prog *rafda.Program, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prog.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	out := fs.String("o", "prog.rar", "output archive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := load(fs.Args())
	if err != nil {
		return err
	}
	if errs := prog.Verify(); len(errs) > 0 {
		return fmt.Errorf("verification failed: %v", errs[0])
	}
	if err := save(prog, *out); err != nil {
		return err
	}
	fmt.Printf("compiled %d classes -> %s\n", len(prog.Classes()), *out)
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	exclude := fs.String("exclude", "", "comma-separated classes to exclude by policy")
	verbose := fs.Bool("v", false, "per-class verdicts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := load(fs.Args())
	if err != nil {
		return err
	}
	var ex []string
	if *exclude != "" {
		ex = strings.Split(*exclude, ",")
	}
	a := prog.Analyze(ex...)
	fmt.Print(a.Report())
	if *verbose {
		for _, c := range prog.Classes() {
			fmt.Printf("  %-40s %s\n", c, a.Why(c))
		}
	}
	return nil
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ContinueOnError)
	out := fs.String("o", "prog.transformed.rar", "output archive")
	protocols := fs.String("protocols", "rrp,soap,json", "proxy protocol families")
	exclude := fs.String("exclude", "", "comma-separated classes to exclude")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := load(fs.Args())
	if err != nil {
		return err
	}
	opts := []rafda.TransformOption{rafda.WithProtocols(strings.Split(*protocols, ",")...)}
	if *exclude != "" {
		opts = append(opts, rafda.WithExclude(strings.Split(*exclude, ",")...))
	}
	tr, err := prog.Transform(opts...)
	if err != nil {
		return err
	}
	tp := tr.Program()
	if errs := tp.Verify(); len(errs) > 0 {
		return fmt.Errorf("transformed program fails verification: %v", errs[0])
	}
	if err := save(tp, *out); err != nil {
		return err
	}
	fmt.Printf("transformed %d classes (of %d) -> %s (%d classes total)\n",
		len(tr.TransformedClasses()), len(prog.Classes()), *out, len(tp.Classes()))
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ContinueOnError)
	withCode := fs.Bool("code", false, "include method bodies")
	class := fs.String("class", "", "single class to print (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := load(fs.Args())
	if err != nil {
		return err
	}
	if *class != "" {
		txt, err := prog.Disassemble(*class, *withCode)
		if err != nil {
			return err
		}
		fmt.Print(txt)
		return nil
	}
	for _, c := range prog.Classes() {
		txt, err := prog.Disassemble(c, *withCode)
		if err != nil {
			return err
		}
		fmt.Println(txt)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	mainClass := fs.String("main", "Main", "entry class")
	transformed := fs.Bool("transformed", false, "transform first, then run locally")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := load(fs.Args())
	if err != nil {
		return err
	}
	if *transformed {
		tr, err := prog.Transform()
		if err != nil {
			return err
		}
		return tr.RunLocal(*mainClass, os.Stdout)
	}
	return prog.Run(*mainClass, os.Stdout)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := load(fs.Args())
	if err != nil {
		return err
	}
	errs := prog.Verify()
	for _, e := range errs {
		fmt.Println(e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d verification error(s)", len(errs))
	}
	fmt.Printf("ok: %d classes verify\n", len(prog.Classes()))
	return nil
}
