package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"rafda"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// Observability views (docs/OBSERVABILITY.md): "rafdac trace" and
// "rafdac top" pull nodes' flight recorders and unified metrics over
// the effect-free wire.OpIntrospect op and render them — a trace as a
// causally-ordered span tree assembled across every queried node, top
// as per-node latency digests.

// span mirrors internal/trace.Span's JSON shape.
type span struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Node   string `json:"node"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Target string `json:"target"`
	Start  int64  `json:"start"`
	Queue  int64  `json:"queue"`
	Dur    int64  `json:"dur"`
	Note   string `json:"note"`
	Err    string `json:"err"`
}

// metrics mirrors the slice of internal/node.Introspection that top
// renders.
type metrics struct {
	Node     string `json:"node"`
	Exports  int    `json:"exports"`
	Activity struct {
		RemoteCallsOut uint64
		RemoteCallsIn  uint64
		Creates        uint64
		MigrationsOut  uint64
		MigrationsIn   uint64
	} `json:"activity"`
	Dedup struct {
		ReplayHits    uint64 `json:"replay_hits"`
		Parked        uint64 `json:"parked_duplicates"`
		StaleRejected uint64 `json:"stale_rejected"`
	} `json:"dedup"`
	Trace *struct {
		Spans    int    `json:"spans"`
		Capacity int    `json:"capacity"`
		Emitted  uint64 `json:"emitted"`
		Kinds    []struct {
			Kind   string  `json:"kind"`
			Count  uint64  `json:"count"`
			P50us  float64 `json:"p50_us"`
			P99us  float64 `json:"p99_us"`
			P999us float64 `json:"p999_us"`
			MaxUs  float64 `json:"max_us"`
		} `json:"kinds"`
	} `json:"trace"`
}

// cmdTrace assembles and prints one distributed call trace: every
// -node is asked for its spans of the given hex trace id, and the
// union is printed as a parent/child tree in causal order.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var nodes multiFlag
	fs.Var(&nodes, "node", "endpoint of a node to query, proto://host:port (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("trace needs at least one -node endpoint")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rafdac trace -node ep [-node ep...] <hex-trace-id>")
	}
	id := fs.Arg(0)
	var spans []span
	for _, ep := range nodes {
		out, err := rafda.IntrospectEndpoint(ep, "trace", id)
		if err != nil {
			return err
		}
		var part []span
		if err := json.Unmarshal([]byte(out), &part); err != nil {
			return fmt.Errorf("%s: bad trace payload: %w", ep, err)
		}
		spans = append(spans, part...)
	}
	if len(spans) == 0 {
		fmt.Printf("trace %s: no spans at %d node(s) (evicted from the ring, or wrong id?)\n", id, len(nodes))
		return nil
	}
	printTree(id, spans)
	return nil
}

// printTree renders spans as an indented causal tree.  A span whose
// parent is unknown (rolled out of some ring) prints as a root marked
// detached, so partial traces stay readable.
func printTree(id string, spans []span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	known := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		known[s.ID] = true
	}
	children := make(map[uint64][]span)
	var roots []span
	for _, s := range spans {
		if s.Parent != 0 && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	nodes := make(map[string]bool)
	for _, s := range spans {
		nodes[s.Node] = true
	}
	fmt.Printf("trace %s: %d span(s) across %d node(s)\n", id, len(spans), len(nodes))
	var walk func(s span, depth int)
	walk = func(s span, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		line := fmt.Sprintf("%s %s @%s", s.Kind, s.Name, s.Node)
		if s.Target != "" {
			line += " -> " + s.Target
		}
		if s.Queue > 0 {
			line += fmt.Sprintf("  queue %v", time.Duration(s.Queue).Round(time.Microsecond))
		}
		if s.Dur > 0 {
			line += fmt.Sprintf("  run %v", time.Duration(s.Dur).Round(time.Microsecond))
		}
		if s.Note != "" {
			line += "  [" + s.Note + "]"
		}
		if s.Err != "" {
			line += "  ERR " + s.Err
		}
		fmt.Println(line)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		if r.Parent != 0 {
			fmt.Printf("(detached: parent %x not in any queried ring)\n", r.Parent)
		}
		walk(r, 1)
	}
}

// cmdTop prints each node's unified metrics snapshot: activity and
// dedup counters plus the flight recorder's per-kind latency digest.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	var nodes multiFlag
	fs.Var(&nodes, "node", "endpoint of a node to query, proto://host:port (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("top needs at least one -node endpoint")
	}
	for _, ep := range nodes {
		out, err := rafda.IntrospectEndpoint(ep, "metrics", "")
		if err != nil {
			return err
		}
		var m metrics
		if err := json.Unmarshal([]byte(out), &m); err != nil {
			return fmt.Errorf("%s: bad metrics payload: %w", ep, err)
		}
		fmt.Printf("%s (%s)\n", m.Node, ep)
		fmt.Printf("  calls in %d  out %d  creates %d  migrations out %d in %d  exports %d\n",
			m.Activity.RemoteCallsIn, m.Activity.RemoteCallsOut, m.Activity.Creates,
			m.Activity.MigrationsOut, m.Activity.MigrationsIn, m.Exports)
		fmt.Printf("  dedup replay %d  parked %d  stale %d\n",
			m.Dedup.ReplayHits, m.Dedup.Parked, m.Dedup.StaleRejected)
		if m.Trace == nil {
			fmt.Println("  tracing disabled")
			continue
		}
		fmt.Printf("  recorder %d/%d spans (%d emitted)\n", m.Trace.Spans, m.Trace.Capacity, m.Trace.Emitted)
		if len(m.Trace.Kinds) > 0 {
			fmt.Printf("  %-13s %9s %10s %10s %10s %10s\n", "kind", "count", "p50", "p99", "p999", "max")
			for _, k := range m.Trace.Kinds {
				fmt.Printf("  %-13s %9d %9.1fµs %9.1fµs %9.1fµs %9.1fµs\n",
					k.Kind, k.Count, k.P50us, k.P99us, k.P999us, k.MaxUs)
			}
		}
	}
	return nil
}
