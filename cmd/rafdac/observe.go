package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"rafda"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// Observability views (docs/OBSERVABILITY.md): "rafdac trace" and
// "rafdac top" pull nodes' flight recorders and unified metrics over
// the effect-free wire.OpIntrospect op and render them — a trace as a
// causally-ordered span tree assembled across every queried node, top
// as per-node latency digests.

// span mirrors internal/trace.Span's JSON shape.
type span struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Node   string `json:"node"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Target string `json:"target"`
	Start  int64  `json:"start"`
	Queue  int64  `json:"queue"`
	Dur    int64  `json:"dur"`
	Note   string `json:"note"`
	Err    string `json:"err"`
}

// keyRow mirrors internal/trace.KeyStat's JSON shape: one row of a
// keyed (per-op or per-tenant) latency digest.
type keyRow struct {
	Key    string  `json:"key"`
	Count  uint64  `json:"count"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// metrics mirrors the slice of internal/node.Introspection that top
// renders.
type metrics struct {
	Node     string `json:"node"`
	Exports  int    `json:"exports"`
	Activity struct {
		RemoteCallsOut uint64
		RemoteCallsIn  uint64
		Creates        uint64
		MigrationsOut  uint64
		MigrationsIn   uint64
	} `json:"activity"`
	Dedup struct {
		ReplayHits    uint64 `json:"replay_hits"`
		Parked        uint64 `json:"parked_duplicates"`
		StaleRejected uint64 `json:"stale_rejected"`
	} `json:"dedup"`
	Overload struct {
		AdmissionRejects  uint64 `json:"admission_rejects"`
		DeadlineExpiries  uint64 `json:"deadline_expiries"`
		OutboxStalls      uint64 `json:"outbox_stalls"`
		Inflight          int64  `json:"inflight"`
		InflightHighWater int64  `json:"inflight_high_water"`
		ShedPriority      uint64 `json:"shed_priority"`
		ShedFairShare     uint64 `json:"shed_fairshare"`
		ShedCoDel         uint64 `json:"shed_codel"`
	} `json:"overload"`
	Shed *struct {
		ByPriority map[string]uint64 `json:"by_priority"`
		ByTenant   map[string]uint64 `json:"by_tenant"`
	} `json:"shed"`
	Trace *struct {
		Spans    int    `json:"spans"`
		Capacity int    `json:"capacity"`
		Emitted  uint64 `json:"emitted"`
		Kinds    []struct {
			Kind   string  `json:"kind"`
			Count  uint64  `json:"count"`
			P50us  float64 `json:"p50_us"`
			P99us  float64 `json:"p99_us"`
			P999us float64 `json:"p999_us"`
			MaxUs  float64 `json:"max_us"`
		} `json:"kinds"`
		Ops     []keyRow `json:"ops"`
		Tenants []keyRow `json:"tenants"`
	} `json:"trace"`
}

// cmdTrace assembles and prints one distributed call trace: every
// -node is asked for its spans of the given hex trace id, and the
// union is printed as a parent/child tree in causal order.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var nodes multiFlag
	fs.Var(&nodes, "node", "endpoint of a node to query, proto://host:port (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("trace needs at least one -node endpoint")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rafdac trace -node ep [-node ep...] <hex-trace-id>")
	}
	id := fs.Arg(0)
	var spans []span
	for _, ep := range nodes {
		out, err := rafda.IntrospectEndpoint(ep, "trace", id)
		if err != nil {
			return err
		}
		var part []span
		if err := json.Unmarshal([]byte(out), &part); err != nil {
			return fmt.Errorf("%s: bad trace payload: %w", ep, err)
		}
		spans = append(spans, part...)
	}
	if len(spans) == 0 {
		fmt.Printf("trace %s: no spans at %d node(s) (evicted from the ring, or wrong id?)\n", id, len(nodes))
		return nil
	}
	printTree(id, spans)
	return nil
}

// printTree renders spans as an indented causal tree.  A span whose
// parent is unknown (rolled out of some ring) prints as a root marked
// detached, so partial traces stay readable.
func printTree(id string, spans []span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	known := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		known[s.ID] = true
	}
	children := make(map[uint64][]span)
	var roots []span
	for _, s := range spans {
		if s.Parent != 0 && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	nodes := make(map[string]bool)
	for _, s := range spans {
		nodes[s.Node] = true
	}
	fmt.Printf("trace %s: %d span(s) across %d node(s)\n", id, len(spans), len(nodes))
	var walk func(s span, depth int)
	walk = func(s span, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		line := fmt.Sprintf("%s %s @%s", s.Kind, s.Name, s.Node)
		if s.Target != "" {
			line += " -> " + s.Target
		}
		if s.Queue > 0 {
			line += fmt.Sprintf("  queue %v", time.Duration(s.Queue).Round(time.Microsecond))
		}
		if s.Dur > 0 {
			line += fmt.Sprintf("  run %v", time.Duration(s.Dur).Round(time.Microsecond))
		}
		if s.Note != "" {
			line += "  [" + s.Note + "]"
		}
		if s.Err != "" {
			line += "  ERR " + s.Err
		}
		fmt.Println(line)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		if r.Parent != 0 {
			fmt.Printf("(detached: parent %x not in any queried ring)\n", r.Parent)
		}
		walk(r, 1)
	}
}

// cmdTop prints each node's unified metrics snapshot: activity, dedup
// and overload counters plus the flight recorder's per-kind, per-op and
// per-tenant latency digests.  With -watch it re-polls at the given
// interval and redraws in place, so an operator can watch the overload
// counters and tail percentiles move under load.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	var nodes multiFlag
	fs.Var(&nodes, "node", "endpoint of a node to query, proto://host:port (repeatable)")
	watch := fs.Duration("watch", 0, "re-poll and redraw in place at this interval (0 = print once)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("top needs at least one -node endpoint")
	}
	if *watch <= 0 {
		return topOnce(nodes)
	}
	for {
		// Clear screen and home the cursor before each frame so the
		// display updates in place rather than scrolling.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Printf("rafdac top  every %v  %s\n\n", *watch, time.Now().Format("15:04:05"))
		if err := topOnce(nodes); err != nil {
			return err
		}
		time.Sleep(*watch)
	}
}

// topOnce polls every node and prints one frame.
func topOnce(nodes []string) error {
	for _, ep := range nodes {
		out, err := rafda.IntrospectEndpoint(ep, "metrics", "")
		if err != nil {
			return err
		}
		var m metrics
		if err := json.Unmarshal([]byte(out), &m); err != nil {
			return fmt.Errorf("%s: bad metrics payload: %w", ep, err)
		}
		fmt.Printf("%s (%s)\n", m.Node, ep)
		fmt.Printf("  calls in %d  out %d  creates %d  migrations out %d in %d  exports %d\n",
			m.Activity.RemoteCallsIn, m.Activity.RemoteCallsOut, m.Activity.Creates,
			m.Activity.MigrationsOut, m.Activity.MigrationsIn, m.Exports)
		fmt.Printf("  dedup replay %d  parked %d  stale %d\n",
			m.Dedup.ReplayHits, m.Dedup.Parked, m.Dedup.StaleRejected)
		ov := m.Overload
		fmt.Printf("  overload rejects %d  expiries %d  outbox stalls %d  inflight %d (hw %d)\n",
			ov.AdmissionRejects, ov.DeadlineExpiries, ov.OutboxStalls,
			ov.Inflight, ov.InflightHighWater)
		if ov.ShedPriority+ov.ShedFairShare+ov.ShedCoDel > 0 {
			fmt.Printf("  shed priority %d  fair-share %d  codel %d\n",
				ov.ShedPriority, ov.ShedFairShare, ov.ShedCoDel)
		}
		if m.Shed != nil {
			printShed("shed class", m.Shed.ByPriority)
			printShed("shed tenant", m.Shed.ByTenant)
		}
		if m.Trace == nil {
			fmt.Println("  tracing disabled")
			continue
		}
		fmt.Printf("  recorder %d/%d spans (%d emitted)\n", m.Trace.Spans, m.Trace.Capacity, m.Trace.Emitted)
		if len(m.Trace.Kinds) > 0 {
			fmt.Printf("  %-13s %9s %10s %10s %10s %10s\n", "kind", "count", "p50", "p99", "p999", "max")
			for _, k := range m.Trace.Kinds {
				fmt.Printf("  %-13s %9d %9.1fµs %9.1fµs %9.1fµs %9.1fµs\n",
					k.Kind, k.Count, k.P50us, k.P99us, k.P999us, k.MaxUs)
			}
		}
		printKeyed("op", m.Trace.Ops)
		printKeyed("tenant", m.Trace.Tenants)
	}
	return nil
}

// printShed renders one shed-refusal table (per priority class or per
// tenant), keys sorted, largest tables still one line per key.
func printShed(axis string, rows map[string]uint64) {
	if len(rows) == 0 {
		return
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("  %-13s %9s\n", axis, "shed")
	for _, k := range keys {
		fmt.Printf("  %-13s %9d\n", k, rows[k])
	}
}

// printKeyed renders one keyed digest (per-op or per-tenant) in the
// same column layout as the per-kind table.
func printKeyed(axis string, rows []keyRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Printf("  %-13s %9s %10s %10s %10s %10s\n", axis, "count", "p50", "p99", "p999", "max")
	for _, r := range rows {
		fmt.Printf("  %-13s %9d %9.1fµs %9.1fµs %9.1fµs %9.1fµs\n",
			r.Key, r.Count, r.P50us, r.P99us, r.P999us, r.MaxUs)
	}
}
