package rafda

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rafda/internal/intercept"
	"rafda/internal/ir"
	"rafda/internal/netsim"
	"rafda/internal/node"
	"rafda/internal/policy"
	"rafda/internal/telemetry"
	"rafda/internal/transport"
	"rafda/internal/vm"
)

// NetProfile configures simulated network conditions for a node's
// transports (zero value: the real loopback network untouched).
type NetProfile struct {
	Latency         time.Duration
	Jitter          time.Duration
	BandwidthBps    int64
	FailAfterWrites int64
	// Faults injects deterministic per-connection chaos (seeded frame
	// drop/duplicate/kill-mid-flight schedules); nil leaves the link
	// healthy.  Drives the E12 fault-injection experiment.
	Faults *NetFaults
}

// NetFaults mirrors internal/netsim.Faults: seeded per-mille schedules
// of injected write faults, applied independently per connection.
type NetFaults struct {
	Seed            uint64
	DupPerMille     int
	DropPerMille    int
	KillPerMille    int
	FirstSafeWrites int64
}

// Predefined profiles mirroring internal/netsim.
var (
	NetLAN    = NetProfile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9}
	NetCampus = NetProfile{Latency: 500 * time.Microsecond, Jitter: 100 * time.Microsecond, BandwidthBps: 1e8}
	NetWAN    = NetProfile{Latency: 20 * time.Millisecond, Jitter: 2 * time.Millisecond, BandwidthBps: 1e7}
)

func (np NetProfile) profile() netsim.Profile {
	p := netsim.Profile{
		Latency:         np.Latency,
		Jitter:          np.Jitter,
		BandwidthBps:    np.BandwidthBps,
		FailAfterWrites: np.FailAfterWrites,
		Seed:            1,
	}
	if f := np.Faults; f != nil {
		p.Faults = &netsim.Faults{
			Seed:            f.Seed,
			DupPerMille:     f.DupPerMille,
			DropPerMille:    f.DropPerMille,
			KillPerMille:    f.KillPerMille,
			FirstSafeWrites: f.FirstSafeWrites,
		}
	}
	return p
}

// LimitsConfig groups a node's server-capacity knobs.
type LimitsConfig struct {
	// MaxInflight bounds how many requests this node's rrp server
	// dispatches concurrently per connection; <= 0 takes the transport
	// default (256).  Together with per-call deadlines it is the
	// reactive overload-control knob: deadlined calls that cannot get a
	// dispatch slot within their budget are rejected at admission and
	// counted in the overload section of IntrospectJSON
	// (docs/OBSERVABILITY.md).  It is also the saturation depth the
	// Shed policies act relative to.
	MaxInflight int
	// DedupWindow bounds the per-caller replay cache of the
	// exactly-once plane (completed call responses retained for
	// duplicate replay); <= 0 takes the default (1024).  See
	// docs/CONCURRENCY.md §10.
	DedupWindow int
}

// TracingConfig groups the distributed-tracing plane knobs.
type TracingConfig struct {
	// Spans sizes the always-on flight recorder's span ring (rounded up
	// to a power of two; <= 0 takes the default, 4096).  The ring is
	// fixed memory: old spans are overwritten, never spilled
	// (docs/OBSERVABILITY.md).
	Spans int
	// Disable turns the tracing plane off entirely — no flight
	// recorder, no span extensions on outgoing requests.  The E14
	// experiment bounds what this saves (<5% on the echo tier).
	Disable bool
}

// ShedConfig groups the proactive load-shedding knobs (zero = all
// policies off).  The policies run as dispatch interceptors after the
// control plane and before the dedup window; each refusal is an
// infrastructure-error response carrying a "load-shed:" marker and is
// counted in the overload and shed sections of IntrospectJSON.  See
// docs/INTERCEPT.md and docs/CONCURRENCY.md §16.
type ShedConfig struct {
	// PriorityAt enables strict-priority admission: once the server's
	// inflight gauge reaches PriorityAt, priority-class-0 requests are
	// shed; class p survives until PriorityAt<<p.  Callers carry the
	// class in the request's tag-5 wire extension (zero — the default —
	// encodes nothing and stays byte-identical to the old protocol).
	PriorityAt int
	// FairShareAt enables per-tenant fair-share admission: once the
	// inflight gauge reaches FairShareAt, a tenant (request Caller)
	// holding more than its 1/active-tenants share of FairShareAt slots
	// is shed.  The tenant table is bounded; past 256 distinct callers
	// the rest share one "~other" bucket.
	FairShareAt int
	// CoDelTarget enables CoDel queue management on the measured
	// dispatch-slot wait: waits persistently above the target for a
	// full CoDelInterval start a drop cycle with the classic
	// inverse-sqrt control law.  Zero disables.
	CoDelTarget time.Duration
	// CoDelInterval is CoDel's sliding window; <= 0 takes 100ms.
	CoDelInterval time.Duration
}

// NodeConfig configures a RAFDA address space.
type NodeConfig struct {
	Name    string
	Output  io.Writer
	Network NetProfile
	// MaxSteps overrides the VM's instruction budget (0 keeps the
	// default).  Long-running benchmark and server deployments raise it;
	// the default exists to stop runaway programs in tests.
	MaxSteps int64
	// NoCallback keeps a node serving no transport fully anonymous: by
	// default such a node volunteers a callback endpoint the first time
	// it dials out, so peers can attribute its call affinity (and
	// migrate hot objects toward it) instead of binning its traffic as
	// anonymous.
	NoCallback bool
	// PoolSize is the per-peer connection pool width: outgoing calls
	// spread across this many multiplexed connections per endpoint,
	// routed by object affinity so per-object ordering is preserved.
	// <= 0 sizes the pool from GOMAXPROCS (capped at 8); 1 restores the
	// historical one-connection-per-peer shape.
	PoolSize int
	// UntokenedWire disables call-token stamping on outgoing requests —
	// the capability flag for interop with legacy peers that predate the
	// token extension.  Untokened calls keep the historical
	// at-least-once/no-retry semantics.
	UntokenedWire bool

	// Limits, Tracing and Shed are the grouped server-policy surface:
	// capacity, observability and proactive shedding in one place.
	Limits  LimitsConfig
	Tracing TracingConfig
	Shed    ShedConfig
	// Interceptors are user dispatch interceptors, run between the
	// shedding tier and the dedup window in the given order on every
	// inbound effectful request; Node.Use appends more at run time.
	// See docs/INTERCEPT.md for the contract and a worked example.
	Interceptors []Interceptor

	// Deprecated: flat aliases kept for source compatibility with the
	// pre-grouped configuration surface.  Each applies only when its
	// grouped counterpart is zero.
	//
	// Deprecated: use Limits.DedupWindow.
	DedupWindow int
	// Deprecated: use Tracing.Spans.
	TraceSpans int
	// Deprecated: use Tracing.Disable.
	NoTrace bool
	// Deprecated: use Limits.MaxInflight.
	MaxInflight int
}

// resolve folds the deprecated flat aliases into the grouped surface
// (group wins when set) and returns the effective configuration.
func (cfg NodeConfig) resolve() NodeConfig {
	if cfg.Limits.MaxInflight == 0 {
		cfg.Limits.MaxInflight = cfg.MaxInflight
	}
	if cfg.Limits.DedupWindow == 0 {
		cfg.Limits.DedupWindow = cfg.DedupWindow
	}
	if cfg.Tracing.Spans == 0 {
		cfg.Tracing.Spans = cfg.TraceSpans
	}
	cfg.Tracing.Disable = cfg.Tracing.Disable || cfg.NoTrace
	return cfg
}

// CallContext is the per-call state a dispatch interceptor sees: the
// inbound wire request plus server-local scratch (measured slot wait,
// gate measurements).  See internal/intercept.CallCtx for field docs.
type CallContext = intercept.CallCtx

// DispatchHandler continues an intercepted dispatch (the "next" of a
// middleware pipeline).
type DispatchHandler = intercept.Handler

// Interceptor is one composable dispatch middleware stage: it may
// short-circuit (return without calling next), pass through, or
// post-process the response.  Built-in concerns (shedding, dedup,
// tracing) are interceptors of the same shape; user interceptors run
// between the shedding tier and the dedup window.
type Interceptor = intercept.Interceptor

// Node is one address space hosting the transformed program.
type Node struct {
	n *node.Node

	// adaptMu guards adapters and clusters (attached via StartAdapter /
	// NewAdapter / JoinCluster, stopped on Close).
	adaptMu  sync.Mutex
	adapters []*Adapter
	clusters []*Cluster
}

// attachAdapter registers an adapter for shutdown on Close.
func (n *Node) attachAdapter(a *Adapter) {
	n.adaptMu.Lock()
	n.adapters = append(n.adapters, a)
	n.adaptMu.Unlock()
}

// attachCluster registers a cluster handle for shutdown on Close.
func (n *Node) attachCluster(c *Cluster) {
	n.adaptMu.Lock()
	n.clusters = append(n.clusters, c)
	n.adaptMu.Unlock()
}

// NewNode builds a node for the transformed program.
func (t *Transformed) NewNode(cfg NodeConfig) (*Node, error) {
	cfg = cfg.resolve()
	// One overload-counter instance shared by the node and its
	// transports: admission rejects at the rrp server and gate-queue
	// expiries at dispatch land in the same introspection snapshot, and
	// the shedding interceptors read the same inflight gauge the rrp
	// server maintains.
	overload := &telemetry.OverloadStats{}
	reg := transport.Default(transport.Options{
		Profile:     cfg.Network.profile(),
		MaxInflight: cfg.Limits.MaxInflight,
		Overload:    overload,
	})
	var vmOpts []vm.Option
	if cfg.MaxSteps > 0 {
		vmOpts = append(vmOpts, vm.WithMaxSteps(cfg.MaxSteps))
	}
	n, err := node.New(node.Config{
		Name:              cfg.Name,
		Result:            t.res,
		Transports:        reg,
		Output:            cfg.Output,
		VMOpts:            vmOpts,
		VolunteerCallback: !cfg.NoCallback,
		PoolSize:          cfg.PoolSize,
		DedupWindow:       cfg.Limits.DedupWindow,
		UntokenedWire:     cfg.UntokenedWire,
		TraceSpans:        cfg.Tracing.Spans,
		NoTrace:           cfg.Tracing.Disable,
		Overload:          overload,
		Shed: intercept.ShedConfig{
			PriorityAt:    cfg.Shed.PriorityAt,
			FairShareAt:   cfg.Shed.FairShareAt,
			CoDelTarget:   cfg.Shed.CoDelTarget,
			CoDelInterval: cfg.Shed.CoDelInterval,
		},
		Interceptors: cfg.Interceptors,
	})
	if err != nil {
		return nil, err
	}
	return &Node{n: n}, nil
}

// Use appends dispatch interceptors to the node's chain at run time, in
// order, after any configured via NodeConfig.Interceptors.  The swap is
// atomic with respect to in-flight dispatches: calls already running
// finish on the chain they started on.
func (n *Node) Use(ics ...Interceptor) { n.n.Use(ics...) }

// Serve starts listening on a protocol ("inproc", "rrp", "soap",
// "json"); empty addr picks a free port.  Returns the endpoint.
func (n *Node) Serve(proto, addr string) (string, error) { return n.n.Serve(proto, addr) }

// Endpoint returns this node's endpoint for proto, if serving.
func (n *Node) Endpoint(proto string) string { return n.n.Endpoint(proto) }

// Close shuts down the node's adapters, cluster membership, servers and
// connections.
func (n *Node) Close() error {
	n.adaptMu.Lock()
	adapters := n.adapters
	clusters := n.clusters
	n.adapters = nil
	n.clusters = nil
	n.adaptMu.Unlock()
	for _, a := range adapters {
		a.Stop()
	}
	for _, c := range clusters {
		c.Stop()
	}
	return n.n.Close()
}

// PlaceClass places future instances (and the statics singleton) of
// class at the node serving endpoint; the empty endpoint or "local"
// restores local placement.  Placement changes take effect immediately
// for subsequent creations and discoveries — the §4 dynamic
// reconfiguration lever.
func (n *Node) PlaceClass(class, endpoint string) error {
	if endpoint == "" || endpoint == "local" {
		n.n.Policy().SetClass(class, policy.LocalPlacement)
		n.n.AnnounceClassPlacement(class, "")
		return nil
	}
	pl, err := policy.RemoteAt(endpoint)
	if err != nil {
		return err
	}
	n.n.Policy().SetClass(class, pl)
	// In a cluster the placement is a new policy epoch every member
	// converges on via the shared directory (no-op otherwise).
	n.n.AnnounceClassPlacement(class, endpoint)
	return nil
}

// PlaceDefault sets the fallback placement for all classes.
func (n *Node) PlaceDefault(endpoint string) error {
	if endpoint == "" || endpoint == "local" {
		n.n.Policy().SetDefault(policy.LocalPlacement)
		return nil
	}
	pl, err := policy.RemoteAt(endpoint)
	if err != nil {
		return err
	}
	n.n.Policy().SetDefault(pl)
	return nil
}

// RunMain executes the program entry point on this node.
func (n *Node) RunMain(mainClass string) error { return n.n.RunMain(mainClass) }

// Call invokes an original static method, converting Go arguments
// (int, int64, float64, bool, string, *Ref) and the result likewise.
func (n *Node) Call(class, method string, args ...any) (any, error) {
	vargs, err := toVMValues(args)
	if err != nil {
		return nil, err
	}
	res, err := n.n.InvokeStatic(class, method, vargs...)
	if err != nil {
		return nil, err
	}
	return fromVMValue(res), nil
}

// CallOn invokes a method on an object handle.
func (n *Node) CallOn(ref *Ref, method string, args ...any) (any, error) {
	if ref == nil {
		return nil, fmt.Errorf("nil object handle")
	}
	vargs, err := toVMValues(args)
	if err != nil {
		return nil, err
	}
	res, err := n.n.CallOn(ref.v, method, vargs...)
	if err != nil {
		return nil, err
	}
	return fromVMValue(res), nil
}

// ReadStatic reads an original static field.
func (n *Node) ReadStatic(class, field string) (any, error) {
	res, err := n.n.ReadStatic(class, field)
	if err != nil {
		return nil, err
	}
	return fromVMValue(res), nil
}

// WriteStatic writes an original static field.
func (n *Node) WriteStatic(class, field string, val any) error {
	v, err := toVMValue(val)
	if err != nil {
		return err
	}
	return n.n.WriteStatic(class, field, v)
}

// Migrate moves the object behind ref to the node at endpoint, morphing
// the local instance into a proxy in place (Figure 1's Cp substitution
// applied to a live object).
func (n *Node) Migrate(ref *Ref, endpoint string) error {
	if ref == nil {
		return fmt.Errorf("nil object handle")
	}
	return n.n.Migrate(ref.v, endpoint)
}

// Replicate installs read-only copies of the object behind ref at the
// given endpoints.  This node stays the lease-holding primary: reads
// may be served by any live replica while its lease holds, writes
// serialise here and fan out to every copy before they acknowledge
// (docs/REPLICATION.md).  Requires cluster membership (JoinCluster).
func (n *Node) Replicate(ref *Ref, endpoints ...string) error {
	if ref == nil {
		return fmt.Errorf("nil object handle")
	}
	return n.n.Replicate(ref.v, endpoints...)
}

// IsReplicated reports whether the object behind ref is part of a
// replica set on this node, as primary or copy.
func (n *Node) IsReplicated(ref *Ref) bool {
	return ref != nil && ref.v.O != nil && n.n.IsReplicated(ref.v.O)
}

// NodeStats counts node activity.
type NodeStats struct {
	RemoteCallsOut uint64
	RemoteCallsIn  uint64
	Creates        uint64
	MigrationsOut  uint64
	MigrationsIn   uint64
	Exports        int
}

// Stats returns a snapshot of activity counters.
func (n *Node) Stats() NodeStats {
	s := n.n.Snapshot()
	return NodeStats{
		RemoteCallsOut: s.RemoteCallsOut,
		RemoteCallsIn:  s.RemoteCallsIn,
		Creates:        s.Creates,
		MigrationsOut:  s.MigrationsOut,
		MigrationsIn:   s.MigrationsIn,
		Exports:        n.n.Exports(),
	}
}

// DedupStats counts the exactly-once plane's activity at one node:
// duplicate deliveries suppressed (replayed, parked behind the first
// attempt, or rejected as stale) and the bounded dedup-window occupancy.
type DedupStats struct {
	ReplayHits       uint64
	ParkedDuplicates uint64
	StaleRejected    uint64
	Retired          uint64
	Adopted          uint64
	Entries          int64
	EntriesHighWater int64
	Windows          int64
}

// Suppressed returns the total duplicate deliveries that did not
// re-execute.
func (s DedupStats) Suppressed() uint64 {
	return s.ReplayHits + s.ParkedDuplicates + s.StaleRejected
}

// DedupStats snapshots the exactly-once plane's counters.  Always live,
// independent of EnableTelemetry.
func (n *Node) DedupStats() DedupStats {
	s := n.n.DedupSnapshot()
	return DedupStats{
		ReplayHits:       s.ReplayHits,
		ParkedDuplicates: s.Parked,
		StaleRejected:    s.StaleRejected,
		Retired:          s.Retired,
		Adopted:          s.Adopted,
		Entries:          s.Entries,
		EntriesHighWater: s.EntriesHighWater,
		Windows:          s.Windows,
	}
}

// ShedSample snapshots the load-shedding plane's per-priority-class and
// per-tenant refusal counters (both maps nil when no Shed policy is
// configured or nothing was shed).  Aggregate per-policy totals live in
// the overload section of IntrospectJSON.
type ShedSample = intercept.ShedSample

// ShedStats snapshots the cumulative shed tables.  Always live when a
// Shed policy is configured, independent of EnableTelemetry.
func (n *Node) ShedStats() ShedSample { return n.n.ShedSnapshot() }

// IntrospectJSON renders one introspection section of this node as
// JSON — the same snapshot wire.OpIntrospect serves to remote callers
// (rafdac's trace/top views, rafda-node's /debug/rafda endpoint).
// Sections: "metrics" (or ""), the unified counters/histograms
// snapshot; "spans", the flight recorder's ring oldest-first; "trace",
// the spans of the one trace whose hex id is arg.
func (n *Node) IntrospectJSON(section, arg string) (string, error) {
	return n.n.Introspect(section, arg)
}

// Ref is an opaque handle to a program object owned by some node.
type Ref struct {
	v vm.Value
}

// ClassName reports the handle's current dynamic class (a proxy class
// name after migration).
func (r *Ref) ClassName() string {
	if r.v.O == nil {
		return "null"
	}
	return r.v.O.ClassName()
}

func toVMValues(args []any) ([]vm.Value, error) {
	out := make([]vm.Value, len(args))
	for i, a := range args {
		v, err := toVMValue(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func toVMValue(a any) (vm.Value, error) {
	switch t := a.(type) {
	case nil:
		return vm.NullV(), nil
	case int:
		return vm.IntV(int64(t)), nil
	case int64:
		return vm.IntV(t), nil
	case float64:
		return vm.FloatV(t), nil
	case bool:
		return vm.BoolV(t), nil
	case string:
		return vm.StringV(t), nil
	case *Ref:
		return t.v, nil
	default:
		return vm.Value{}, fmt.Errorf("unsupported Go value of type %T", a)
	}
}

func fromVMValue(v vm.Value) any {
	switch v.K {
	case 0, ir.KindVoid:
		return nil
	case ir.KindBool:
		return v.Bool()
	case ir.KindInt:
		return v.I
	case ir.KindFloat:
		return v.F
	case ir.KindString:
		return v.S
	default:
		return &Ref{v: v}
	}
}
