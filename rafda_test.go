package rafda

import (
	"bytes"
	"strings"
	"testing"
)

const apiDemoSource = `
class Greeter {
    string prefix;
    Greeter(string p) { this.prefix = p; }
    string greet(string who) { return prefix + ", " + who + "!"; }
}
class Main {
    static void main() {
        Greeter g = new Greeter("Hello");
        sys.System.println(g.greet("world"));
    }
}`

func TestPublicPipeline(t *testing.T) {
	prog, err := CompileString(apiDemoSource)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !prog.Has("Greeter") || !prog.Has("Main") {
		t.Fatal("classes missing")
	}
	if errs := prog.Verify(); len(errs) > 0 {
		t.Fatalf("verify: %v", errs)
	}
	var out bytes.Buffer
	if err := prog.Run("Main", &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "Hello, world!\n" {
		t.Fatalf("output %q", out.String())
	}

	a := prog.Analyze()
	if !a.Transformable("Greeter") {
		t.Fatalf("Greeter: %s", a.Why("Greeter"))
	}
	if a.Transformable("sys.Object") {
		t.Fatal("sys.Object transformable")
	}
	if why := a.Why("sys.Object"); !strings.Contains(why, "system") {
		t.Fatalf("why(sys.Object)=%q", why)
	}
	st := a.Stats()
	if st.Total == 0 || st.Transformable == 0 {
		t.Fatalf("stats: %+v", st)
	}

	tr, err := prog.Transform(WithProtocols("rrp", "soap"))
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	tp := tr.Program()
	for _, want := range []string{"Greeter_O_Int", "Greeter_O_Local", "Greeter_O_Proxy_rrp", "Greeter_O_Proxy_soap", "Greeter_O_Factory"} {
		if !tp.Has(want) {
			t.Errorf("missing %s", want)
		}
	}
	if errs := tp.Verify(); len(errs) > 0 {
		t.Fatalf("transformed verify: %v", errs)
	}
	var tout bytes.Buffer
	if err := tr.RunLocal("Main", &tout); err != nil {
		t.Fatalf("run local: %v", err)
	}
	if tout.String() != out.String() {
		t.Fatalf("transformed output %q want %q", tout.String(), out.String())
	}
}

func TestPublicEncodeDecode(t *testing.T) {
	prog, err := CompileString(apiDemoSource)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prog.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Classes()) != len(prog.Classes()) {
		t.Fatalf("class count mismatch")
	}
	var out bytes.Buffer
	if err := back.Run("Main", &out); err != nil {
		t.Fatalf("run decoded: %v", err)
	}
	if out.String() != "Hello, world!\n" {
		t.Fatalf("output %q", out.String())
	}
}

func TestPublicDisassemble(t *testing.T) {
	prog, _ := CompileString(apiDemoSource)
	txt, err := prog.Disassemble("Greeter", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "class Greeter") || !strings.Contains(txt, "greet") {
		t.Fatalf("disassembly:\n%s", txt)
	}
	if _, err := prog.Disassemble("Nope", false); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestPublicDistribution(t *testing.T) {
	prog, err := CompileString(`
class Service {
    int hits;
    Service() { this.hits = 0; }
    int ping() { hits = hits + 1; return hits; }
}
class Main {
    static int touch() {
        Service s = new Service();
        return s.ping() + s.ping();
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Transform()
	if err != nil {
		t.Fatal(err)
	}
	server, err := tr.NewNode(NodeConfig{Name: "srv"})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	ep, err := server.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}
	client, err := tr.NewNode(NodeConfig{Name: "cli"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Serve("rrp", ""); err != nil {
		t.Fatal(err)
	}
	if err := client.PlaceClass("Service", ep); err != nil {
		t.Fatal(err)
	}
	got, err := client.Call("Main", "touch")
	if err != nil {
		t.Fatal(err)
	}
	if got.(int64) != 3 {
		t.Fatalf("touch=%v want 3", got)
	}
	if server.Stats().Creates != 1 {
		t.Fatalf("server stats: %+v", server.Stats())
	}
	// Revert placement.
	if err := client.PlaceClass("Service", "local"); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Call("Main", "touch"); err != nil || got.(int64) != 3 {
		t.Fatalf("local touch: %v %v", got, err)
	}
	if server.Stats().Creates != 1 {
		t.Fatal("local placement still created remotely")
	}
}

func TestPublicMigration(t *testing.T) {
	prog, err := CompileString(`
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump() { n = n + 1; return n; }
}
class Keeper {
    static Counter held = new Counter(40);
    static int poke() { return held.bump(); }
}
class Main { static void main() {} }`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Transform()
	if err != nil {
		t.Fatal(err)
	}
	a, err := tr.NewNode(NodeConfig{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bNode, err := tr.NewNode(NodeConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer bNode.Close()
	epB, err := bNode.Serve("rrp", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Serve("rrp", ""); err != nil {
		t.Fatal(err)
	}

	if got, _ := a.Call("Keeper", "poke"); got.(int64) != 41 {
		t.Fatalf("pre-migration poke=%v", got)
	}
	href, err := a.ReadStatic("Keeper", "held")
	if err != nil {
		t.Fatal(err)
	}
	ref := href.(*Ref)
	if err := a.Migrate(ref, epB); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !strings.Contains(ref.ClassName(), "_O_Proxy_") {
		t.Fatalf("handle did not morph: %s", ref.ClassName())
	}
	if got, _ := a.Call("Keeper", "poke"); got.(int64) != 42 {
		t.Fatalf("post-migration poke=%v", got)
	}
	if bNode.Stats().MigrationsIn != 1 {
		t.Fatalf("b stats: %+v", bNode.Stats())
	}
}

func TestValueConversion(t *testing.T) {
	prog, err := CompileString(`
class Echo {
    static int addInt(int a, int b) { return a + b; }
    static float addFloat(float a, float b) { return a + b; }
    static bool both(bool a, bool b) { return a && b; }
    static string cat(string a, string b) { return a + b; }
}
class Main { static void main() {} }`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Transform()
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.NewNode(NodeConfig{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if got, err := n.Call("Echo", "addInt", 2, int64(40)); err != nil || got.(int64) != 42 {
		t.Fatalf("addInt: %v %v", got, err)
	}
	if got, err := n.Call("Echo", "addFloat", 1.5, 2.25); err != nil || got.(float64) != 3.75 {
		t.Fatalf("addFloat: %v %v", got, err)
	}
	if got, err := n.Call("Echo", "both", true, true); err != nil || got.(bool) != true {
		t.Fatalf("both: %v %v", got, err)
	}
	if got, err := n.Call("Echo", "cat", "a", "b"); err != nil || got.(string) != "ab" {
		t.Fatalf("cat: %v %v", got, err)
	}
	if _, err := n.Call("Echo", "addInt", 2, struct{}{}); err == nil {
		t.Fatal("expected conversion error")
	}
}
