package rafda

// Benchmark harness: one benchmark per experiment in DESIGN.md §4.
// EXPERIMENTS.md records the paper claim vs. the measured shape for each.
//
//	E1  Figures 2–5   transformation of the paper's sample class X
//	E2  §2.4          transformability analysis over the JDK-like corpus
//	E3  Figure 1/§4   the redistribution scenario, local vs remote
//	E4  §3            RAFDA transformation vs wrapper baseline overhead
//	E5  §1/§2         proxy protocol families under LAN conditions
//	E6  §4            dynamic redistribution: policy flips and migration
//	E7  scaling       RRP concurrency throughput: multiplexed vs lock-step
//	E8  scaling       intra-node parallelism: sharded VM locking vs the
//	                  coarse-lock baseline, distinct vs shared targets
//	E9  adaptive      telemetry-driven placement convergence
//	E11 scaling       pooled-transport saturation: sharded per-endpoint
//	                  connection pools vs the single-socket ceiling

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rafda/internal/corpus"
	"rafda/internal/minijava"
	"rafda/internal/netsim"
	"rafda/internal/node"
	"rafda/internal/transform"
	"rafda/internal/transport"
	"rafda/internal/vm"
	"rafda/internal/wire"
	"rafda/internal/wrapper"
)

// figureXSource is the paper's Figure 2 class X with its collaborators.
const figureXSource = `
class Y {
    static int K = 17;
    Y() {}
    int n(long j) { return (int) j + 1; }
}
class Z {
    int seed;
    Z(int seed) { this.seed = seed; }
    int q(int i) { return seed + i; }
}
class X {
    private Y y;
    X(Y y) { this.y = y; }
    protected int m(long j) { return y.n(j); }
    static final Z z = new Z(Y.K);
    static int p(int i) { return z.q(i); }
}
class Main {
    static void main() {
        X x = new X(new Y());
        sys.System.println("m=" + x.m(41));
        sys.System.println("p=" + X.p(3));
    }
}`

// BenchmarkE1_TransformFigureX measures the §2 transformation pipeline
// on the paper's sample class (Figures 2→3,4,5): interface extraction,
// property-isation, static→singleton conversion, factory generation and
// reference rewriting.
func BenchmarkE1_TransformFigureX(b *testing.B) {
	prog, err := minijava.Compile(figureXSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.Transform(prog, transform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_TransformCorpus500 measures transformer throughput on a
// 500-class synthetic library (classes transformed per second).
func BenchmarkE1_TransformCorpus500(b *testing.B) {
	p := corpus.JDKLike()
	p.Classes = 500
	prog := corpus.Generate(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transform.Transform(prog, transform.Options{Protocols: []string{"rrp"}})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Transformed)), "classes")
		}
	}
}

// BenchmarkE2_Transformability runs the §2.4 substitutability analysis
// over the full 8,200-class JDK-like corpus and reports the
// non-transformable percentage (paper: "about 40%").
func BenchmarkE2_Transformability(b *testing.B) {
	prog := corpus.Generate(corpus.JDKLike())
	b.ResetTimer()
	var pct float64
	for i := 0; i < b.N; i++ {
		a := transform.Analyze(prog)
		pct = a.Stats().Percent()
	}
	b.ReportMetric(pct, "%nontransformable")
}

// BenchmarkE2_NativeSensitivity sweeps native-method density, the
// paper's stated driver ("this percentage would increase if the user
// code contains native methods").
func BenchmarkE2_NativeSensitivity(b *testing.B) {
	for _, nat := range []int{50, 150, 300, 500} {
		b.Run(fmt.Sprintf("coreNative=%d", nat), func(b *testing.B) {
			p := corpus.JDKLike()
			p.Classes = 2000
			p.CoreNativeFrac = nat
			prog := corpus.Generate(p)
			var pct float64
			for i := 0; i < b.N; i++ {
				pct = transform.Analyze(prog).Stats().Percent()
			}
			b.ReportMetric(pct, "%nontransformable")
		})
	}
}

// figure1Bench is the Figure 1 scenario for measurement: A holds a
// (possibly remote) C; one use() is one interaction with the shared
// instance.
const figure1Bench = `
class C {
    int state;
    C(int s) { this.state = s; }
    int bump() { state = state + 1; return state; }
}
class A {
    C c;
    A(C c) { this.c = c; }
    int use() { return c.bump(); }
}
class Setup {
    static A make() { return new A(new C(0)); }
}
class Main { static void main() {} }`

// BenchmarkE3_Figure1 measures one interaction with the shared C
// instance in every deployment the paper contrasts: the untransformed
// original, the transformed program with C local, and the transformed
// program with C remote behind each proxy protocol (LAN conditions).
func BenchmarkE3_Figure1(b *testing.B) {
	b.Run("original", func(b *testing.B) {
		prog, err := minijava.Compile(figure1Bench)
		if err != nil {
			b.Fatal(err)
		}
		machine := vm.MustNew(prog)
		a, err := machine.Invoke("Setup", "make", vm.Value{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := machine.Invoke(a.O.ClassName(), "use", a, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("transformed-local", func(b *testing.B) {
		tr := mustTransformed(b, figure1Bench)
		n, err := tr.NewNode(NodeConfig{Name: "solo"})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		a, err := n.Call("Setup", "make")
		if err != nil {
			b.Fatal(err)
		}
		ref := a.(*Ref)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := n.CallOn(ref, "use"); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, proto := range []string{"inproc", "rrp", "soap", "json"} {
		b.Run("remote-"+proto, func(b *testing.B) {
			tr := mustTransformed(b, figure1Bench)
			client, _, cleanup := remotePair(b, tr, proto, "C", NetProfile{})
			defer cleanup()
			a, err := client.Call("Setup", "make")
			if err != nil {
				b.Fatal(err)
			}
			ref := a.(*Ref)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.CallOn(ref, "use"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// hotLoopSource is the E4 workload: a tight in-program loop of method
// calls and field updates, where interposition overhead dominates.
const hotLoopSource = `
class Hot {
    int v;
    Hot(int v) { this.v = v; }
    int step(int x) { v = v + x; return v; }
}
class Driver {
    static int run(int n) {
        Hot h = new Hot(0);
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) {
            acc = h.step(1);
        }
        return acc;
    }
}
class Main { static void main() {} }`

const hotLoopIters = 1000

// BenchmarkE4_InterpositionOverhead quantifies §3's comparison: the
// untransformed program, the RAFDA-transformed program (all-local), and
// the wrapper-per-object baseline the paper says has "significantly
// greater overhead".
func BenchmarkE4_InterpositionOverhead(b *testing.B) {
	run := func(b *testing.B, machine *vm.VM, class string) {
		b.Helper()
		args := []vm.Value{vm.IntV(hotLoopIters)}
		for i := 0; i < b.N; i++ {
			res, err := machine.Invoke(class, "run", vm.Value{}, args)
			if err != nil {
				b.Fatal(err)
			}
			if res.I != hotLoopIters {
				b.Fatalf("bad result %d", res.I)
			}
		}
	}

	b.Run("original", func(b *testing.B) {
		prog, err := minijava.Compile(hotLoopSource)
		if err != nil {
			b.Fatal(err)
		}
		run(b, vm.MustNew(prog), "Driver")
	})

	b.Run("rafda-local", func(b *testing.B) {
		prog, err := minijava.Compile(hotLoopSource)
		if err != nil {
			b.Fatal(err)
		}
		res, err := transform.Transform(prog, transform.Options{Protocols: []string{"rrp"}})
		if err != nil {
			b.Fatal(err)
		}
		machine := vm.MustNew(res.Program)
		transform.BindLocal(machine, res)
		run(b, machine, transform.CFactory("Driver"))
	})

	b.Run("wrapper", func(b *testing.B) {
		prog, err := minijava.Compile(hotLoopSource)
		if err != nil {
			b.Fatal(err)
		}
		res, err := wrapper.Transform(prog)
		if err != nil {
			b.Fatal(err)
		}
		run(b, vm.MustNew(res.Program), "Driver")
	})
}

// BenchmarkE4_PropertyAblation isolates the cost of property-isation
// (field access through get_/set_ instead of direct access) — the
// design decision DESIGN.md §5 calls out.
func BenchmarkE4_PropertyAblation(b *testing.B) {
	direct := `
class Cell { int v; Cell(int v) { this.v = v; } }
class Driver {
    static int run(int n) {
        Cell c = new Cell(0);
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { c.v = c.v + 1; acc = c.v; }
        return acc;
    }
}
class Main { static void main() {} }`
	b.Run("direct-field", func(b *testing.B) {
		prog, err := minijava.Compile(direct)
		if err != nil {
			b.Fatal(err)
		}
		machine := vm.MustNew(prog)
		args := []vm.Value{vm.IntV(hotLoopIters)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := machine.Invoke("Driver", "run", vm.Value{}, args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("properties", func(b *testing.B) {
		prog, err := minijava.Compile(direct)
		if err != nil {
			b.Fatal(err)
		}
		res, err := transform.Transform(prog, transform.Options{Protocols: []string{"rrp"}})
		if err != nil {
			b.Fatal(err)
		}
		machine := vm.MustNew(res.Program)
		transform.BindLocal(machine, res)
		args := []vm.Value{vm.IntV(hotLoopIters)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := machine.Invoke(transform.CFactory("Driver"), "run", vm.Value{}, args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// echoSource is the E5 workload: a remote echo of a payload, isolating
// per-call protocol cost (marshalling + framing + transport).
const echoSource = `
class EchoSvc {
    string echo(string s) { return s; }
    int add(int a, int b) { return a + b; }
}
class Setup {
    static EchoSvc make() { return new EchoSvc(); }
}
class Main { static void main() {} }`

// BenchmarkE5_Protocols compares the proxy protocol families the paper
// names (§1: "SOAP-based, RMI-based, ...") on small-argument calls and
// on growing payloads, under simulated LAN conditions.
func BenchmarkE5_Protocols(b *testing.B) {
	for _, proto := range []string{"inproc", "rrp", "soap", "json"} {
		b.Run(proto+"/add", func(b *testing.B) {
			tr := mustTransformed(b, echoSource)
			client, _, cleanup := remotePair(b, tr, proto, "EchoSvc", NetProfile{})
			defer cleanup()
			svc, err := client.Call("Setup", "make")
			if err != nil {
				b.Fatal(err)
			}
			ref := svc.(*Ref)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := client.CallOn(ref, "add", 20, 22)
				if err != nil {
					b.Fatal(err)
				}
				if got.(int64) != 42 {
					b.Fatal("bad echo")
				}
			}
		})
		for _, size := range []int{16, 1024, 16384} {
			b.Run(fmt.Sprintf("%s/echo%dB", proto, size), func(b *testing.B) {
				tr := mustTransformed(b, echoSource)
				client, _, cleanup := remotePair(b, tr, proto, "EchoSvc", NetProfile{})
				defer cleanup()
				svc, err := client.Call("Setup", "make")
				if err != nil {
					b.Fatal(err)
				}
				ref := svc.(*Ref)
				payload := makePayload(size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, err := client.CallOn(ref, "echo", payload)
					if err != nil {
						b.Fatal(err)
					}
					if len(got.(string)) != size {
						b.Fatal("bad payload")
					}
				}
			})
		}
	}
}

// BenchmarkE5_WANLatencyDominates repeats the small-call comparison
// under simulated WAN conditions (20 ms one-way): propagation delay
// swamps encoding differences, so the protocol choice stops mattering —
// the crossover the shape analysis in EXPERIMENTS.md discusses.
func BenchmarkE5_WANLatencyDominates(b *testing.B) {
	for _, proto := range []string{"rrp", "soap"} {
		b.Run(proto, func(b *testing.B) {
			tr := mustTransformed(b, echoSource)
			client, _, cleanup := remotePair(b, tr, proto, "EchoSvc", NetWAN)
			defer cleanup()
			svc, err := client.Call("Setup", "make")
			if err != nil {
				b.Fatal(err)
			}
			ref := svc.(*Ref)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.CallOn(ref, "add", 1, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_Redistribution measures the §4 dynamic-reconfiguration
// mechanisms: flipping creation policy at run time, and migrating a
// live object between nodes (including the in-place proxy morph).
func BenchmarkE6_Redistribution(b *testing.B) {
	migSource := `
class Bag {
    int a; int b; int c;
    Bag(int a) { this.a = a; this.b = a * 2; this.c = a * 3; }
    int sum() { return a + b + c; }
}
class Holder {
    static Bag held = new Bag(1);
    static int poke() { return held.sum(); }
}
class Main { static void main() {} }`

	b.Run("policy-flip", func(b *testing.B) {
		tr := mustTransformed(b, figure1Bench)
		client, server, cleanup := remotePair(b, tr, "rrp", "", NetProfile{})
		defer cleanup()
		ep := server.Endpoint("rrp")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				if err := client.PlaceClass("C", ep); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := client.PlaceClass("C", "local"); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := client.Call("Setup", "make"); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("migrate-roundtrip", func(b *testing.B) {
		tr := mustTransformed(b, migSource)
		nodeA, err := tr.NewNode(NodeConfig{Name: "a"})
		if err != nil {
			b.Fatal(err)
		}
		defer nodeA.Close()
		nodeB, err := tr.NewNode(NodeConfig{Name: "b"})
		if err != nil {
			b.Fatal(err)
		}
		defer nodeB.Close()
		epA, err := nodeA.Serve("rrp", "")
		if err != nil {
			b.Fatal(err)
		}
		epB, err := nodeB.Serve("rrp", "")
		if err != nil {
			b.Fatal(err)
		}
		href, err := nodeA.ReadStatic("Holder", "held")
		if err != nil {
			b.Fatal(err)
		}
		ref := href.(*Ref)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target := epB
			if i%2 == 1 {
				target = epA
			}
			if err := nodeA.Migrate(ref, target); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got, err := nodeA.Call("Holder", "poke"); err != nil || got.(int64) != 6 {
			b.Fatalf("state lost after %d migrations: %v %v", b.N, got, err)
		}
	})

	b.Run("post-migration-call", func(b *testing.B) {
		tr := mustTransformed(b, migSource)
		nodeA, err := tr.NewNode(NodeConfig{Name: "a"})
		if err != nil {
			b.Fatal(err)
		}
		defer nodeA.Close()
		nodeB, err := tr.NewNode(NodeConfig{Name: "b"})
		if err != nil {
			b.Fatal(err)
		}
		defer nodeB.Close()
		if _, err := nodeA.Serve("rrp", ""); err != nil {
			b.Fatal(err)
		}
		epB, err := nodeB.Serve("rrp", "")
		if err != nil {
			b.Fatal(err)
		}
		href, err := nodeA.ReadStatic("Holder", "held")
		if err != nil {
			b.Fatal(err)
		}
		if err := nodeA.Migrate(href.(*Ref), epB); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got, err := nodeA.Call("Holder", "poke"); err != nil || got.(int64) != 6 {
				b.Fatalf("poke: %v %v", got, err)
			}
		}
	})
}

// runConcurrentCalls spreads b.N calls over `parallel` goroutines
// (work-stealing, so stragglers don't skew the tail) and reports
// aggregate throughput.
func runConcurrentCalls(b *testing.B, parallel int, call func() error) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if err := call(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

// BenchmarkE7_ConcurrencyThroughput measures node-to-node RRP throughput
// when N goroutines share one connection, at parallelism 1/8/64, on the
// raw loopback and under simulated LAN conditions.  "serialized" is the
// seed transport's behaviour (one call in flight, the connection locked
// for the round trip); "multiplexed" is the pipelined transport.  The
// handler is a pure echo, so the numbers isolate transport + codec.
func BenchmarkE7_ConcurrencyThroughput(b *testing.B) {
	echo := func(req *wire.Request) *wire.Response {
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KInt, Int: 42}}
	}
	networks := []struct {
		name    string
		profile netsim.Profile
	}{
		{"loopback", netsim.Profile{}},
		{"lan", netsim.Profile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9, Seed: 1}},
	}
	for _, nw := range networks {
		for _, mode := range []string{"serialized", "multiplexed"} {
			for _, parallel := range []int{1, 8, 64} {
				b.Run(fmt.Sprintf("%s/%s/p%d", nw.name, mode, parallel), func(b *testing.B) {
					tr := transport.NewRRP(transport.Options{Profile: nw.profile})
					srv, err := tr.Listen("", echo)
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
					client, err := tr.Dial(srv.Endpoint())
					if err != nil {
						b.Fatal(err)
					}
					defer client.Close()
					if mode == "serialized" {
						client = transport.Lockstep(client)
					}
					req := &wire.Request{ID: 1, Op: wire.OpInvoke, GUID: "g", Method: "add",
						Args: []wire.Value{{Kind: wire.KInt, Int: 20}, {Kind: wire.KInt, Int: 22}}}
					runConcurrentCalls(b, parallel, func() error {
						resp, err := client.Call(req)
						if err != nil {
							return err
						}
						if resp.Result.Int != 42 {
							return fmt.Errorf("bad echo %+v", resp)
						}
						return nil
					})
				})
			}
		}
	}
}

// BenchmarkE7_NodeConcurrency is the end-to-end version: concurrent
// proxy invocations between two full nodes (VM, marshalling, dispatch)
// over the shared multiplexed RRP connection.
func BenchmarkE7_NodeConcurrency(b *testing.B) {
	for _, parallel := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("p%d", parallel), func(b *testing.B) {
			tr := mustTransformed(b, echoSource)
			client, _, cleanup := remotePair(b, tr, "rrp", "EchoSvc", NetProfile{})
			defer cleanup()
			svc, err := client.Call("Setup", "make")
			if err != nil {
				b.Fatal(err)
			}
			ref := svc.(*Ref)
			runConcurrentCalls(b, parallel, func() error {
				got, err := client.CallOn(ref, "add", 20, 22)
				if err != nil {
					return err
				}
				if got.(int64) != 42 {
					return fmt.Errorf("bad result %v", got)
				}
				return nil
			})
		})
	}
}

// e8Source is the E8 workload: an object whose deposit() is a pure
// read-modify-write (CPU-bound bytecode) and whose slowDeposit() blocks
// for 200µs between heap accesses (sys.Clock.sleepMicros models per-call
// blocking work — I/O, device time — that cannot release the VM because
// it sits between field reads and writes).
const e8Source = `
class Account {
    int balance;
    Account(int b) { this.balance = b; }
    int deposit(int x) { balance = balance + x; return balance; }
    int slowDeposit(int x) {
        sys.Clock.sleepMicros(200);
        balance = balance + x;
        return balance;
    }
}
class Mk {
    static Account make() { return new Account(0); }
}
class Main { static void main() {} }`

// runConcurrentCallsIdx is runConcurrentCalls with the goroutine index
// handed to the call, so each goroutine can address its own target.
func runConcurrentCallsIdx(b *testing.B, parallel int, call func(g int) error) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if err := call(g); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

// BenchmarkE8_IntraNodeParallelism measures what the sharded VM lock
// buys INSIDE one node: concurrent invocations (the node CallOn path —
// the same gate discipline inbound dispatch uses) against distinct vs a
// shared target object, under the sharded design and under the seed's
// coarse-lock regime (vm.WithCoarseLock).
//
//   - distinct/sharded: scales with parallelism — blocking work overlaps
//     across objects (and CPU work across cores when GOMAXPROCS > 1);
//   - distinct/coarse: pinned to sequential throughput — one lock
//     serialises every invocation of the whole VM;
//   - shared/*: both regimes serialise (per-object monitor semantics);
//     the stress tests assert no update is lost.
//
// The "block" workload (200µs of in-call blocking) is the headline: it
// is the component a coarse lock cannot overlap no matter the core
// count.  The "cpu" workload additionally shows GOMAXPROCS-bound
// scaling on multicore hosts.
func BenchmarkE8_IntraNodeParallelism(b *testing.B) {
	workloads := []struct{ name, method string }{
		{"cpu", "deposit"},
		{"block", "slowDeposit"},
	}
	for _, wl := range workloads {
		for _, mode := range []string{"coarse", "sharded"} {
			for _, target := range []string{"distinct", "shared"} {
				for _, parallel := range []int{1, 8, 64} {
					name := fmt.Sprintf("%s/%s/%s/p%d", wl.name, mode, target, parallel)
					b.Run(name, func(b *testing.B) {
						prog, err := minijava.Compile(e8Source)
						if err != nil {
							b.Fatal(err)
						}
						res, err := transform.Transform(prog, transform.Options{Protocols: []string{"rrp"}})
						if err != nil {
							b.Fatal(err)
						}
						var vmOpts []vm.Option
						if mode == "coarse" {
							vmOpts = append(vmOpts, vm.WithCoarseLock())
						}
						n, err := node.New(node.Config{Name: "e8", Result: res, VMOpts: vmOpts})
						if err != nil {
							b.Fatal(err)
						}
						defer n.Close()
						objects := 1
						if target == "distinct" {
							objects = parallel
						}
						refs := make([]vm.Value, objects)
						for i := range refs {
							v, err := n.InvokeStatic("Mk", "make")
							if err != nil {
								b.Fatal(err)
							}
							refs[i] = v
						}
						arg := []vm.Value{vm.IntV(1)}
						runConcurrentCallsIdx(b, parallel, func(g int) error {
							_, err := n.CallOn(refs[g%objects], wl.method, arg...)
							return err
						})
						// No call may be lost: the balances must account
						// for every deposit exactly once.
						var sum int64
						for _, ref := range refs {
							v, err := n.CallOn(ref, "deposit", vm.IntV(0))
							if err != nil {
								b.Fatal(err)
							}
							sum += v.I
						}
						if sum != int64(b.N) {
							b.Fatalf("lost updates: balances sum to %d, want %d", sum, b.N)
						}
					})
				}
			}
		}
	}
}

// ---- helpers ----

func mustTransformed(b *testing.B, src string) *Transformed {
	b.Helper()
	prog, err := CompileString(src)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := prog.Transform(WithProtocols("inproc", "rrp", "soap", "json"))
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// remotePair builds a client/server pair over proto under the given
// network profile (zero profile: raw loopback, isolating protocol cost);
// placeClass (when non-empty) is placed on the server.
func remotePair(b *testing.B, tr *Transformed, proto, placeClass string, net NetProfile) (client, server *Node, cleanup func()) {
	b.Helper()
	server, err := tr.NewNode(NodeConfig{Name: "server", Network: net})
	if err != nil {
		b.Fatal(err)
	}
	ep, err := server.Serve(proto, "")
	if err != nil {
		b.Fatal(err)
	}
	client, err = tr.NewNode(NodeConfig{Name: "client", Network: net})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Serve(proto, ""); err != nil {
		b.Fatal(err)
	}
	if placeClass != "" {
		if err := client.PlaceClass(placeClass, ep); err != nil {
			b.Fatal(err)
		}
	}
	return client, server, func() {
		_ = client.Close()
		_ = server.Close()
	}
}

func makePayload(n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	return string(buf)
}

var _ = io.Discard

// e9BenchSource mirrors cmd/rafda-bench's E9 workload.
const e9BenchSource = `
class Counter {
    int n;
    Counter(int n) { this.n = n; }
    int bump(int x) { n = n + x; return n; }
}
class Setup {
    static Counter make() { return new Counter(0); }
}
class Main { static void main() {} }`

// BenchmarkE9_AdaptivePlacement measures the three placements of E9's
// hot object: manually optimal (local from the start), statically
// mis-placed (every call pays the remote round trip forever), and
// adaptive (mis-placed start, telemetry-driven migration, then the
// converged steady state is measured).  The adaptive row must land near
// the manual-optimal row — that is the closed loop's whole claim.
func BenchmarkE9_AdaptivePlacement(b *testing.B) {
	build := func(b *testing.B) (*Node, *Node, string) {
		prog, err := CompileString(e9BenchSource)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := prog.Transform(WithProtocols("rrp"))
		if err != nil {
			b.Fatal(err)
		}
		nodeA, err := tr.NewNode(NodeConfig{Name: "driver"})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { nodeA.Close() })
		nodeB, err := tr.NewNode(NodeConfig{Name: "server"})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { nodeB.Close() })
		if _, err := nodeA.Serve("rrp", ""); err != nil {
			b.Fatal(err)
		}
		epB, err := nodeB.Serve("rrp", "")
		if err != nil {
			b.Fatal(err)
		}
		return nodeA, nodeB, epB
	}
	mkRef := func(b *testing.B, n *Node) *Ref {
		made, err := n.Call("Setup", "make")
		if err != nil {
			b.Fatal(err)
		}
		return made.(*Ref)
	}
	drive := func(b *testing.B, n *Node, ref *Ref) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := n.CallOn(ref, "bump", 1); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("manual-optimal", func(b *testing.B) {
		nodeA, _, _ := build(b)
		drive(b, nodeA, mkRef(b, nodeA))
	})

	b.Run("misplaced-static", func(b *testing.B) {
		nodeA, _, epB := build(b)
		if err := nodeA.PlaceClass("Counter", epB); err != nil {
			b.Fatal(err)
		}
		drive(b, nodeA, mkRef(b, nodeA))
	})

	b.Run("adaptive-converged", func(b *testing.B) {
		nodeA, nodeB, epB := build(b)
		cfg := AdaptConfig{Threshold: 0.6, MinCalls: 10, Confirm: 2, Budget: 2}
		adB := nodeB.NewAdapter(cfg)
		nodeA.NewAdapter(cfg) // telemetry on, symmetric deployment
		if err := nodeA.PlaceClass("Counter", epB); err != nil {
			b.Fatal(err)
		}
		ref := mkRef(b, nodeA)
		// Converge deterministically: traffic windows + manual ticks
		// until the migration decision executes, then one more call to
		// absorb the redirect.
		converged := false
		for w := 0; w < 10 && !converged; w++ {
			for i := 0; i < 30; i++ {
				if _, err := nodeA.CallOn(ref, "bump", 1); err != nil {
					b.Fatal(err)
				}
			}
			adB.Tick()
			for _, d := range adB.Decisions() {
				if d.Action == "migrate" && d.Executed {
					converged = true
				}
			}
		}
		if !converged {
			b.Fatal("adapter never migrated the hot object")
		}
		if _, err := nodeA.CallOn(ref, "bump", 1); err != nil {
			b.Fatal(err)
		}
		drive(b, nodeA, ref)
	})
}

// BenchmarkE11_PooledTransport measures the pooled-transport saturation
// experiment's core comparison: echo throughput at parallelism 64 over
// a per-endpoint connection pool of width 1 (the E7 single-socket
// configuration), 2, 4 and 8, under simulated LAN conditions.  On a
// multicore host widening the pool lifts the calls/s ceiling — every
// frame no longer funnels through one writer/reader goroutine pair; on
// one core the rows stay flat (the pair already saturates the CPU).
// `rafda-bench -exp e11` is the report form and writes BENCH_E11.json.
func BenchmarkE11_PooledTransport(b *testing.B) {
	echo := func(req *wire.Request) *wire.Response {
		return &wire.Response{ID: req.ID, Result: wire.Value{Kind: wire.KInt, Int: 42}}
	}
	lan := netsim.Profile{Latency: 100 * time.Microsecond, BandwidthBps: 1e9, Seed: 1}
	for _, pool := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lan/pool%d/p64", pool), func(b *testing.B) {
			tr := transport.NewRRP(transport.Options{Profile: lan})
			srv, err := tr.Listen("", echo)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			cc := transport.NewClientCachePool(transport.NewRegistry(tr), pool)
			defer cc.Close()
			ep := srv.Endpoint()
			req := &wire.Request{ID: 1, Op: wire.OpInvoke, GUID: "g", Method: "add",
				Args: []wire.Value{{Kind: wire.KInt, Int: 20}, {Kind: wire.KInt, Int: 22}}}
			runConcurrentCalls(b, 64, func() error {
				resp, err := cc.CallKey(ep, "", req)
				if err != nil {
					return err
				}
				if resp.Result.Int != 42 {
					return fmt.Errorf("bad echo %+v", resp)
				}
				return nil
			})
		})
	}
}
