package rafda

import (
	"fmt"

	"rafda/internal/transport"
	"rafda/internal/wire"
)

// IntrospectEndpoint fetches one introspection section from the node
// serving endpoint, as JSON — the remote form of Node.IntrospectJSON.
// Sections: "metrics" (or ""), the unified counters/histograms
// snapshot; "spans", the node's flight-recorder ring; "trace", the
// spans of the one trace whose hex id is arg.  The request is
// effect-free on the target (wire.OpIntrospect rides the same dispatch
// plane as ping), so polling a production node is always safe.  Used
// by rafdac's "trace" and "top" views.
func IntrospectEndpoint(endpoint, section, arg string) (string, error) {
	cc := transport.NewClientCachePool(transport.Default(transport.Options{}), 1)
	defer cc.Close()
	resp, err := cc.Call(endpoint, &wire.Request{
		ID: 1, Op: wire.OpIntrospect, Method: section, GUID: arg,
	})
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", fmt.Errorf("introspect %s: %s", endpoint, resp.Err)
	}
	return resp.Result.Str, nil
}
