package rafda

import (
	"fmt"
	"io"
	"sort"

	"rafda/internal/ir"
	"rafda/internal/minijava"
	"rafda/internal/transform"
	"rafda/internal/verifier"
	"rafda/internal/vm"
)

// Program is a compiled (or transformed) class program.
type Program struct {
	ir *ir.Program
}

// Compile compiles a set of named mini-Java sources.
func Compile(sources map[string]string) (*Program, error) {
	p, err := minijava.CompileFiles(sources)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// CompileString compiles a single source string.
func CompileString(src string) (*Program, error) {
	return Compile(map[string]string{"input.mj": src})
}

// MustCompileString is CompileString that panics; for examples with
// static sources.
func MustCompileString(src string) *Program {
	p, err := CompileString(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Decode reads a program previously written with Encode.
func Decode(r io.Reader) (*Program, error) {
	p, err := ir.DecodeProgram(r)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// Encode writes the program in the binary archive format.
func (p *Program) Encode(w io.Writer) error { return ir.EncodeProgram(w, p.ir) }

// Classes returns all class names, sorted.
func (p *Program) Classes() []string { return p.ir.SortedNames() }

// Has reports whether the named class exists.
func (p *Program) Has(class string) bool { return p.ir.Has(class) }

// Disassemble renders one class; with code when full is set.
func (p *Program) Disassemble(class string, full bool) (string, error) {
	c := p.ir.Class(class)
	if c == nil {
		return "", fmt.Errorf("no class %q", class)
	}
	return ir.Sprint(c, ir.PrintOptions{Code: full}), nil
}

// Verify runs the structural and stack verifier over the program.
func (p *Program) Verify() []error { return verifier.Verify(p.ir) }

// Run executes `static void main()` on mainClass in a fresh VM without
// any transformation, writing console output to out.
func (p *Program) Run(mainClass string, out io.Writer) error {
	opts := []vm.Option{}
	if out != nil {
		opts = append(opts, vm.WithOutput(out))
	}
	machine, err := vm.New(p.ir.Clone(), opts...)
	if err != nil {
		return err
	}
	return machine.RunMain(mainClass)
}

// Analysis is a substitutability analysis (§2.4).
type Analysis struct {
	a *transform.Analysis
}

// Analyze computes which classes are transformable, with optional
// policy exclusions.
func (p *Program) Analyze(exclude ...string) *Analysis {
	return &Analysis{a: transform.Analyze(p.ir, exclude...)}
}

// Transformable reports whether the class may be substituted.
func (a *Analysis) Transformable(class string) bool { return a.a.Transformable(class) }

// Why explains why a class cannot be transformed ("transformable"
// otherwise), naming the inducing class for closure rules.
func (a *Analysis) Why(class string) string {
	c := a.a.Cause(class)
	if c.Reason == transform.ReasonNone {
		if a.a.Transformable(class) {
			return "transformable"
		}
		return "unknown class"
	}
	if c.Via != "" {
		return fmt.Sprintf("%s (via %s)", c.Reason, c.Via)
	}
	return c.Reason.String()
}

// Report renders the per-reason breakdown.
func (a *Analysis) Report() string { return a.a.Report() }

// Stats summarises the analysis.
type Stats struct {
	Total            int
	Transformable    int
	NonTransformable int
	Percent          float64
	ByReason         map[string]int
}

// Stats returns summary counts.
func (a *Analysis) Stats() Stats {
	s := a.a.Stats()
	out := Stats{
		Total:            s.Total,
		Transformable:    s.Transformable,
		NonTransformable: s.NonTransformable,
		Percent:          s.Percent(),
		ByReason:         map[string]int{},
	}
	for r, n := range s.ByReason {
		out.ByReason[r.String()] = n
	}
	return out
}

// TransformOption configures Transform.
type TransformOption func(*transform.Options)

// WithProtocols selects the proxy protocol families to generate
// (default: rrp, soap, json).
func WithProtocols(protos ...string) TransformOption {
	return func(o *transform.Options) { o.Protocols = protos }
}

// WithExclude bars classes from transformation by policy.
func WithExclude(classes ...string) TransformOption {
	return func(o *transform.Options) { o.Exclude = classes }
}

// Transformed is the result of the paper's §2 transformation.
type Transformed struct {
	res *transform.Result
}

// Transform applies the full transformation pipeline.
func (p *Program) Transform(opts ...TransformOption) (*Transformed, error) {
	var o transform.Options
	for _, f := range opts {
		f(&o)
	}
	res, err := transform.Transform(p.ir, o)
	if err != nil {
		return nil, err
	}
	return &Transformed{res: res}, nil
}

// LoadTransformed reconstructs a Transformed from an already-transformed
// program (e.g. a decoded archive produced by `rafdac transform`), so
// nodes can be built without re-running the transformation.
func LoadTransformed(p *Program) (*Transformed, error) {
	res, err := transform.Reconstruct(p.ir)
	if err != nil {
		return nil, err
	}
	return &Transformed{res: res}, nil
}

// Program returns the transformed program.
func (t *Transformed) Program() *Program { return &Program{ir: t.res.Program} }

// TransformedClasses lists the substituted classes, sorted.
func (t *Transformed) TransformedClasses() []string {
	out := append([]string(nil), t.res.Transformed...)
	sort.Strings(out)
	return out
}

// Protocols returns the generated proxy protocol families.
func (t *Transformed) Protocols() []string {
	return append([]string(nil), t.res.Protocols...)
}

// Analysis returns the substitutability analysis the transformation used.
func (t *Transformed) Analysis() *Analysis { return &Analysis{a: t.res.Analysis} }

// RunLocal executes the transformed program in a single address space
// with the all-local policy — the paper's §4 "local version" — writing
// output to out.
func (t *Transformed) RunLocal(mainClass string, out io.Writer) error {
	opts := []vm.Option{}
	if out != nil {
		opts = append(opts, vm.WithOutput(out))
	}
	machine, err := vm.New(t.res.Program.Clone(), opts...)
	if err != nil {
		return err
	}
	transform.BindLocal(machine, t.res)
	return transform.RunMain(machine, t.res, mainClass)
}
